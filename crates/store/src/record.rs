//! Durable per-cell result records.
//!
//! A [`Record`] is one line of the registry's JSONL file: the cell's
//! [`Manifest`], its content hash, and a [`CellResult`] payload carrying the
//! PR 1 `Summary` monoid (as exact bit-pattern samples), the cell's
//! pre-rendered table rows, named exact scalars, and free-form notes.
//!
//! Floats are stored as 16-digit hex encodings of their IEEE-754 bit
//! patterns — never as decimal text — so a resumed sweep exports *bytes*
//! identical to an uninterrupted one: no decimal round-trip can perturb a
//! quantile or a mean.

use crate::json::Json;
use crate::manifest::{Manifest, SCHEMA_VERSION};
use avc_analysis::stats::Summary;
use avc_population::telemetry::metrics::NUM_BUCKETS;
use avc_population::telemetry::{CellTelemetry, HistogramSnapshot, MetricValue, RegistrySnapshot};
use std::collections::BTreeMap;

/// Encodes an `f64` as the 16-hex-digit form of its bit pattern.
///
/// # Example
///
/// ```
/// use avc_store::record::{f64_to_hex, f64_from_hex};
/// let x = 0.1f64 + 0.2; // not representable in short decimal
/// assert_eq!(f64_from_hex(&f64_to_hex(x)).unwrap(), x);
/// ```
#[must_use]
pub fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Decodes [`f64_to_hex`]'s output.
///
/// # Errors
///
/// Rejects strings that are not exactly 16 hex digits.
pub fn f64_from_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("bad f64 hex `{s}`"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 hex `{s}`"))
}

/// The trial-level outcome of a cell: the exact sample set behind the
/// `Summary` monoid plus the error bookkeeping of the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSummary {
    /// Parallel-time samples of converged trials, in the canonical sorted
    /// order of `Summary::samples` (`f64::total_cmp`).
    pub samples: Vec<f64>,
    /// Fraction of trials converging to the wrong output.
    pub error_fraction: f64,
    /// Total trials run (converged or not).
    pub total_runs: u64,
}

impl TrialSummary {
    /// Reconstructs the exact [`Summary`] monoid (`None` when no trial
    /// converged — `Summary` has no empty-sample representation).
    #[must_use]
    pub fn summary(&self) -> Option<Summary> {
        (!self.samples.is_empty()).then(|| Summary::from_samples(&self.samples))
    }
}

/// The durable payload of one completed cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellResult {
    /// Trial samples, for experiments with per-trial randomness.
    pub trials: Option<TrialSummary>,
    /// Pre-rendered table rows this cell contributes, keyed by the output
    /// file stem (`fig3_time`, `fig3_error`, …). Rendered once at run time
    /// by the same code as the legacy path, then replayed verbatim at
    /// export — the trivially byte-stable route.
    pub tables: BTreeMap<String, Vec<Vec<String>>>,
    /// Named exact scalars needed to re-derive export artifacts that span
    /// cells (fitted slopes, plot coordinates), e.g. `achieved_eps`.
    pub values: BTreeMap<String, f64>,
    /// Free-form notes (e.g. surviving mutant rules from the model checks).
    pub notes: Vec<String>,
    /// Aggregated run telemetry for the cell's batch, when the cell
    /// captured any. Absent from legacy records (parsed leniently) and
    /// never part of the manifest hash — telemetry describes *how* a cell
    /// ran, not *what* it computed.
    pub telemetry: Option<CellTelemetry>,
}

impl CellResult {
    /// A named scalar, if recorded.
    #[must_use]
    pub fn value(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// The rows recorded for a table stem (empty if none).
    #[must_use]
    pub fn rows(&self, stem: &str) -> &[Vec<String>] {
        self.tables.get(stem).map_or(&[], Vec::as_slice)
    }
}

/// Serializes one metric value in the same shape `avc-telemetry`'s string
/// exporter emits (`{"counter":N}` / `{"gauge":N}` /
/// `{"histogram":{"count":..,"sum":..,"buckets":[[i,c],..]}}`), so the
/// record's embedded telemetry and the sweep's `telemetry.jsonl` agree.
fn metric_value_to_json(value: &MetricValue) -> Json {
    match value {
        MetricValue::Counter(v) => Json::obj([("counter", Json::Int(*v as i64))]),
        MetricValue::Gauge(v) => Json::obj([("gauge", Json::Int(*v as i64))]),
        MetricValue::Histogram(h) => Json::obj([(
            "histogram",
            Json::obj([
                ("count", Json::Int(h.count as i64)),
                ("sum", Json::Int(h.sum as i64)),
                (
                    "buckets",
                    Json::Arr(
                        h.nonzero_buckets()
                            .iter()
                            .map(|&(i, c)| {
                                Json::Arr(vec![Json::Int(i as i64), Json::Int(c as i64)])
                            })
                            .collect(),
                    ),
                ),
            ]),
        )]),
    }
}

fn metric_value_from_json(json: &Json) -> Result<MetricValue, String> {
    if let Some(v) = json.get("counter").and_then(Json::as_int) {
        return Ok(MetricValue::Counter(v as u64));
    }
    if let Some(v) = json.get("gauge").and_then(Json::as_int) {
        return Ok(MetricValue::Gauge(v as u64));
    }
    let h = json
        .get("histogram")
        .ok_or("metric value of unknown kind")?;
    let mut snap = HistogramSnapshot::new();
    snap.count = h
        .get("count")
        .and_then(Json::as_int)
        .ok_or("histogram missing count")? as u64;
    snap.sum = h
        .get("sum")
        .and_then(Json::as_int)
        .ok_or("histogram missing sum")? as u64;
    for pair in h
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram missing buckets")?
    {
        let pair = pair.as_arr().ok_or("histogram bucket not a pair")?;
        let [index, count] = pair else {
            return Err("histogram bucket not a pair".to_string());
        };
        let index = index.as_int().ok_or("bucket index not an int")? as usize;
        if index >= NUM_BUCKETS {
            return Err(format!("bucket index {index} out of range"));
        }
        snap.buckets[index] = count.as_int().ok_or("bucket count not an int")? as u64;
    }
    Ok(MetricValue::Histogram(snap))
}

fn registry_to_json(snap: &RegistrySnapshot) -> Json {
    Json::Obj(
        snap.iter()
            .map(|(name, value)| (name.to_string(), metric_value_to_json(value)))
            .collect(),
    )
}

fn registry_from_json(json: &Json) -> Result<RegistrySnapshot, String> {
    let mut snap = RegistrySnapshot::new();
    for (name, value) in json.as_obj().ok_or("telemetry registry not an object")? {
        snap.set(name, metric_value_from_json(value)?);
    }
    Ok(snap)
}

fn telemetry_to_json(telemetry: &CellTelemetry) -> Json {
    Json::obj([
        ("sim", registry_to_json(&telemetry.sim)),
        ("wall", registry_to_json(&telemetry.wall)),
    ])
}

pub(crate) fn telemetry_from_json(json: &Json) -> Result<CellTelemetry, String> {
    let sim = match json.get("sim") {
        Some(sim) => registry_from_json(sim)?,
        None => RegistrySnapshot::new(),
    };
    let wall = match json.get("wall") {
        Some(wall) => registry_from_json(wall)?,
        None => RegistrySnapshot::new(),
    };
    Ok(CellTelemetry { sim, wall })
}

/// One line of the registry: a completed cell with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The cell's identity.
    pub manifest: Manifest,
    /// [`Manifest::hash`], denormalized for grep/`avc show`.
    pub hash: String,
    /// The payload.
    pub result: CellResult,
    /// Wall-clock milliseconds the cell took when it actually ran.
    pub wall_ms: u64,
}

impl Record {
    /// Builds a record, computing the hash from the manifest.
    #[must_use]
    pub fn new(manifest: Manifest, result: CellResult, wall_ms: u64) -> Record {
        let hash = manifest.hash();
        Record {
            manifest,
            hash,
            result,
            wall_ms,
        }
    }

    /// Serializes to the on-disk JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let result = &self.result;
        let mut payload: BTreeMap<String, Json> = BTreeMap::new();
        if let Some(trials) = &result.trials {
            payload.insert(
                "trials".to_string(),
                Json::obj([
                    (
                        "samples",
                        Json::Arr(
                            trials
                                .samples
                                .iter()
                                .map(|&x| Json::Str(f64_to_hex(x)))
                                .collect(),
                        ),
                    ),
                    (
                        "error_fraction",
                        Json::Str(f64_to_hex(trials.error_fraction)),
                    ),
                    ("total_runs", Json::Int(trials.total_runs as i64)),
                ]),
            );
        }
        payload.insert(
            "tables".to_string(),
            Json::Obj(
                result
                    .tables
                    .iter()
                    .map(|(stem, rows)| {
                        (
                            stem.clone(),
                            Json::Arr(
                                rows.iter()
                                    .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        );
        payload.insert(
            "values".to_string(),
            Json::Obj(
                result
                    .values
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Str(f64_to_hex(v))))
                    .collect(),
            ),
        );
        payload.insert(
            "notes".to_string(),
            Json::Arr(result.notes.iter().map(Json::str).collect()),
        );
        if let Some(telemetry) = &result.telemetry {
            payload.insert("telemetry".to_string(), telemetry_to_json(telemetry));
        }

        Json::obj([
            ("schema", Json::Int(SCHEMA_VERSION)),
            ("hash", Json::str(&self.hash)),
            ("manifest", self.manifest.to_json()),
            ("result", Json::Obj(payload)),
            ("wall_ms", Json::Int(self.wall_ms as i64)),
        ])
    }

    /// Deserializes one record.
    ///
    /// # Errors
    ///
    /// Rejects malformed documents, foreign schema versions, and records
    /// whose stored hash disagrees with the manifest (corruption guard).
    pub fn from_json(json: &Json) -> Result<Record, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_int)
            .ok_or("record missing schema")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "record schema {schema} unsupported (expected {SCHEMA_VERSION})"
            ));
        }
        let manifest = Manifest::from_json(json.get("manifest").ok_or("record missing manifest")?)?;
        let hash = json
            .get("hash")
            .and_then(Json::as_str)
            .ok_or("record missing hash")?
            .to_string();
        if hash != manifest.hash() {
            return Err(format!("record hash mismatch for {hash}"));
        }
        let payload = json.get("result").ok_or("record missing result")?;

        let trials = match payload.get("trials") {
            None => None,
            Some(t) => {
                let samples = t
                    .get("samples")
                    .and_then(Json::as_arr)
                    .ok_or("trials missing samples")?
                    .iter()
                    .map(|s| s.as_str().ok_or("sample not a string").map(f64_from_hex))
                    .collect::<Result<Result<Vec<_>, _>, _>>()
                    .map_err(str::to_string)??;
                let error_fraction = f64_from_hex(
                    t.get("error_fraction")
                        .and_then(Json::as_str)
                        .ok_or("trials missing error_fraction")?,
                )?;
                let total_runs = t
                    .get("total_runs")
                    .and_then(Json::as_int)
                    .ok_or("trials missing total_runs")? as u64;
                Some(TrialSummary {
                    samples,
                    error_fraction,
                    total_runs,
                })
            }
        };

        let tables = payload
            .get("tables")
            .and_then(Json::as_obj)
            .ok_or("result missing tables")?
            .iter()
            .map(|(stem, rows)| {
                let rows = rows
                    .as_arr()
                    .ok_or("table rows not an array")?
                    .iter()
                    .map(|row| {
                        row.as_arr()
                            .ok_or("table row not an array")?
                            .iter()
                            .map(|cell| {
                                cell.as_str().map(str::to_string).ok_or("cell not a string")
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((stem.clone(), rows))
            })
            .collect::<Result<BTreeMap<_, _>, &str>>()?;

        let values = payload
            .get("values")
            .and_then(Json::as_obj)
            .ok_or("result missing values")?
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .ok_or_else(|| format!("value {k} not a string"))
                    .and_then(f64_from_hex)
                    .map(|x| (k.clone(), x))
            })
            .collect::<Result<BTreeMap<_, _>, _>>()?;

        let notes = payload
            .get("notes")
            .and_then(Json::as_arr)
            .ok_or("result missing notes")?
            .iter()
            .map(|n| n.as_str().map(str::to_string).ok_or("note not a string"))
            .collect::<Result<Vec<_>, _>>()?;

        // Lenient by absence: legacy records predate the field.
        let telemetry = payload
            .get("telemetry")
            .map(telemetry_from_json)
            .transpose()?;

        let wall_ms = json
            .get("wall_ms")
            .and_then(Json::as_int)
            .ok_or("record missing wall_ms")? as u64;

        Ok(Record {
            manifest,
            hash,
            result: CellResult {
                trials,
                tables,
                values,
                notes,
                telemetry,
            },
            wall_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        let manifest = Manifest::new("fig3", [("n", "101"), ("protocol", "avc")]);
        let result = CellResult {
            trials: Some(TrialSummary {
                samples: vec![1.5, 2.25, 0.1 + 0.2],
                error_fraction: 1.0 / 3.0,
                total_runs: 3,
            }),
            tables: BTreeMap::from([(
                "fig3_time".to_string(),
                vec![vec![
                    "101".to_string(),
                    "avc".to_string(),
                    "1.88".to_string(),
                ]],
            )]),
            values: BTreeMap::from([("achieved_eps".to_string(), 0.009_900_990_099_009_9)]),
            notes: vec!["note with \"quotes\"".to_string()],
            telemetry: Some(sample_telemetry()),
        };
        Record::new(manifest, result, 1234)
    }

    fn sample_telemetry() -> CellTelemetry {
        use avc_population::telemetry::keys;
        let mut t = CellTelemetry::new();
        t.sim.set(keys::SIM_STEPS, MetricValue::Counter(12_345));
        t.sim.set("sim.depth_max", MetricValue::Gauge(7));
        let mut h = HistogramSnapshot::new();
        h.record(100);
        h.record(5_000);
        t.sim
            .set(keys::SIM_CONVERGENCE_STEPS, MetricValue::Histogram(h));
        t.wall
            .set(keys::WALL_CELL_NS, MetricValue::Counter(9_876_543));
        t
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let record = sample_record();
        let text = record.to_json().to_string_compact();
        let back = Record::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(record, back);
        // Bit-exactness of the awkward float.
        assert_eq!(
            back.result.trials.as_ref().unwrap().samples[2].to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
    }

    #[test]
    fn telemetry_roundtrips_and_legacy_records_parse() {
        let record = sample_record();
        let text = record.to_json().to_string_compact();
        let back = Record::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.result.telemetry, Some(sample_telemetry()));

        // A record without the field (legacy schema) parses to None.
        let mut json = record.to_json();
        if let Some(Json::Obj(result)) = json.get("result").cloned() {
            let mut result = result;
            result.remove("telemetry");
            if let Json::Obj(map) = &mut json {
                map.insert("result".to_string(), Json::Obj(result));
            }
        }
        let legacy = Record::from_json(&json).unwrap();
        assert_eq!(legacy.result.telemetry, None);
    }

    #[test]
    fn summary_reconstruction_matches_monoid() {
        let record = sample_record();
        let summary = record.result.trials.unwrap().summary().unwrap();
        assert_eq!(summary.count, 3);
        assert_eq!(summary.samples(), &[0.1 + 0.2, 1.5, 2.25]);
    }

    #[test]
    fn tampered_hash_is_rejected() {
        let record = sample_record();
        let mut json = record.to_json();
        if let Json::Obj(map) = &mut json {
            map.insert("hash".to_string(), Json::str("0".repeat(64)));
        }
        assert!(Record::from_json(&json).unwrap_err().contains("mismatch"));
    }

    #[test]
    fn f64_hex_handles_extremes() {
        for x in [0.0, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1e300, -7.25] {
            assert_eq!(f64_from_hex(&f64_to_hex(x)).unwrap().to_bits(), x.to_bits());
        }
        assert!(f64_from_hex("xyz").is_err());
        assert!(f64_from_hex("123").is_err());
    }
}
