//! Sweep specs for the paper's two figures and the dynamics trace.

use super::{only_row, rule_name, scenario_params, trials_of};
use crate::manifest::Manifest;
use crate::record::{f64_to_hex, CellResult};
use crate::sweep::{Cell, Export, Plan};
use avc_analysis::cli::Args;
use avc_analysis::experiments::{dynamics, fig3, fig4};
use avc_analysis::plot::ScatterPlot;
use std::collections::BTreeMap;

pub(super) fn fig3_plan(args: &Args) -> Plan {
    let config = fig3::Config::from_args(args);
    let mut cells = Vec::new();
    for (ni, &n) in config.ns.iter().enumerate() {
        for (pi, &key) in fig3::PROTOCOL_KEYS.iter().enumerate() {
            let label = format!("n={n}/{key}");
            let scenario = fig3::cell_scenario(&config, ni, pi);
            let manifest = Manifest::new(
                "fig3",
                [
                    ("cell", label.clone()),
                    ("protocol", key.to_string()),
                    ("engine", scenario.engine.to_string()),
                    ("rule", rule_name(scenario.rule).to_string()),
                    ("n", n.to_string()),
                    ("runs", config.runs.to_string()),
                    ("seed", scenario.seed.to_string()),
                ]
                .into_iter()
                .chain(scenario_params(&scenario)),
            );
            let config = config.clone();
            cells.push(Cell {
                manifest,
                label,
                run: Box::new(move |stats| {
                    let cell = fig3::run_cell(&config, ni, pi, stats);
                    let one = std::slice::from_ref(&cell);
                    CellResult {
                        trials: Some(trials_of(&cell.results)),
                        tables: BTreeMap::from([
                            (
                                "fig3_time".to_string(),
                                vec![only_row(&fig3::time_table(one))],
                            ),
                            (
                                "fig3_error".to_string(),
                                vec![only_row(&fig3::error_table(one))],
                            ),
                        ]),
                        telemetry: Some(cell.telemetry.clone()),
                        ..CellResult::default()
                    }
                }),
            });
        }
    }

    let banner = format!(
        "3-state vs 4-state vs n-state AVC, eps = 1/n, {} runs per cell, n in {:?}",
        config.runs, config.ns
    );
    let export_config = config;
    Plan {
        name: "fig3".to_string(),
        banner,
        cells,
        export: Box::new(move |results| {
            let mut time = fig3::time_table(&[]);
            let mut error = fig3::error_table(&[]);
            for r in results {
                for row in r.rows("fig3_time") {
                    time.push_row(row.clone());
                }
                for row in r.rows("fig3_error") {
                    error.push_row(row.clone());
                }
            }

            // Terminal rendering of the left panel (log–log, as in the paper).
            let mut plot = ScatterPlot::new(
                "Figure 3 (left): parallel convergence time vs n (log-log)",
                64,
                18,
            )
            .log_log();
            for (pi, family) in ["3-state", "4-state", "avc"].iter().enumerate() {
                let series: Vec<(f64, f64)> = results
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % fig3::PROTOCOL_KEYS.len() == pi)
                    .filter_map(|(i, r)| {
                        let n = export_config.ns[i / fig3::PROTOCOL_KEYS.len()] as f64;
                        let mean = r.trials.as_ref()?.summary()?.mean;
                        Some((n, mean))
                    })
                    .collect();
                plot.add_series(*family, series);
            }
            Export {
                tables: vec![
                    ("fig3_time".to_string(), time),
                    ("fig3_error".to_string(), error),
                ],
                trailer: vec![plot.render()],
            }
        }),
    }
}

pub(super) fn fig4_plan(args: &Args) -> Plan {
    let config = fig4::Config::from_args(args);
    let mut cells = Vec::new();
    for (si, &s_requested) in config.state_counts.iter().enumerate() {
        for (ei, &eps) in config.epsilons.iter().enumerate() {
            let label = format!("s={s_requested}/eps={eps:e}");
            let scenario = fig4::cell_scenario(&config, si, ei);
            let manifest = Manifest::new(
                "fig4",
                [
                    ("cell", label.clone()),
                    ("protocol", "avc".to_string()),
                    ("engine", scenario.engine.to_string()),
                    ("rule", rule_name(scenario.rule).to_string()),
                    ("n", config.n.to_string()),
                    ("s", s_requested.to_string()),
                    ("eps", f64_to_hex(eps)),
                    ("eps_text", format!("{eps:e}")),
                    ("runs", config.runs.to_string()),
                    ("seed", scenario.seed.to_string()),
                ]
                .into_iter()
                .chain(scenario_params(&scenario)),
            );
            let config = config.clone();
            cells.push(Cell {
                manifest,
                label,
                run: Box::new(move |stats| {
                    let point = fig4::run_point(&config, si, ei, stats);
                    CellResult {
                        trials: Some(super::trials_of_summary(&point.summary)),
                        tables: BTreeMap::from([(
                            "fig4".to_string(),
                            vec![only_row(&fig4::table(
                                std::slice::from_ref(&point),
                                config.n,
                            ))],
                        )]),
                        values: BTreeMap::from([
                            ("achieved_eps".to_string(), point.achieved_epsilon),
                            ("s".to_string(), point.s as f64),
                        ]),
                        telemetry: Some(point.telemetry.clone()),
                        ..CellResult::default()
                    }
                }),
            });
        }
    }

    let banner = format!(
        "AVC time vs margin, n = {}, s in {:?}, {} margins x {} runs",
        config.n,
        config.state_counts,
        config.epsilons.len(),
        config.runs
    );
    let export_config = config;
    Plan {
        name: "fig4".to_string(),
        banner,
        cells,
        export: Box::new(move |results| {
            let mut table = fig4::table(&[], export_config.n);
            for r in results {
                for row in r.rows("fig4") {
                    table.push_row(row.clone());
                }
            }

            // (s, achieved_eps, mean) triples for the two panels.
            let points: Vec<(f64, f64, f64)> = results
                .iter()
                .filter_map(|r| {
                    Some((
                        r.value("s")?,
                        r.value("achieved_eps")?,
                        r.trials.as_ref()?.summary()?.mean,
                    ))
                })
                .collect();

            let mut left = ScatterPlot::new(
                "Figure 4 (left): time vs eps, one series per s (log-log)",
                64,
                18,
            )
            .log_log();
            for &s_requested in &export_config.state_counts {
                let avc_s = avc_protocols::Avc::with_states(s_requested)
                    .expect("valid budget")
                    .s() as f64;
                let series: Vec<(f64, f64)> = points
                    .iter()
                    .filter(|&&(s, _, _)| s == avc_s)
                    .map(|&(_, eps, mean)| (eps, mean))
                    .collect();
                if !series.is_empty() {
                    left.add_series(format!("s={avc_s}"), series);
                }
            }

            let mut right = ScatterPlot::new(
                "Figure 4 (right): time vs s*eps, all series (log-log)",
                64,
                18,
            )
            .log_log();
            right.add_series(
                "all (s, eps)",
                points.iter().map(|&(s, eps, mean)| (s * eps, mean)),
            );

            Export {
                tables: vec![("fig4".to_string(), table)],
                trailer: vec![left.render(), right.render()],
            }
        }),
    }
}

pub(super) fn dynamics_plan(args: &Args) -> Plan {
    let config = dynamics::Config::from_args(args);
    let label = format!(
        "n={}/m={}/d={}/eps={:e}",
        config.n, config.m, config.d, config.epsilon
    );
    let manifest = Manifest::new(
        "dynamics",
        [
            ("cell", label.clone()),
            ("protocol", "avc".to_string()),
            ("engine", "count".to_string()),
            ("rule", "output_consensus".to_string()),
            ("n", config.n.to_string()),
            ("m", config.m.to_string()),
            ("d", config.d.to_string()),
            ("eps", f64_to_hex(config.epsilon)),
            ("eps_text", format!("{:e}", config.epsilon)),
            ("cadence", config.cadence.to_string()),
            ("seed", config.seed.to_string()),
        ],
    );

    let run_config = config.clone();
    let cell = Cell {
        manifest,
        label,
        run: Box::new(move |_stats| {
            let trace = dynamics::run(&run_config);
            let table = dynamics::table(&trace, &run_config);
            CellResult {
                tables: BTreeMap::from([("dynamics".to_string(), table.rows().to_vec())]),
                values: BTreeMap::from([(
                    "parallel_time".to_string(),
                    trace.outcome.parallel_time,
                )]),
                notes: vec![format!("{:?}", trace.outcome.verdict)],
                ..CellResult::default()
            }
        }),
    };

    let banner = format!(
        "one AVC run: n = {}, m = {}, d = {}, eps = {}",
        config.n, config.m, config.d, config.epsilon
    );
    let export_config = config;
    Plan {
        name: "dynamics".to_string(),
        banner,
        cells: vec![cell],
        export: Box::new(move |results| {
            let r = results[0];
            // Rebuild the titled table around the stored rows.
            let empty = avc_population::trace::Trace {
                samples: Vec::new(),
                names: dynamics::STATISTICS.iter().map(|s| s.to_string()).collect(),
                outcome: avc_population::spec::RunOutcome {
                    steps: 0,
                    parallel_time: 0.0,
                    verdict: avc_population::spec::Verdict::MaxSteps,
                },
            };
            let mut table = dynamics::table(&empty, &export_config);
            for row in r.rows("dynamics") {
                table.push_row(row.clone());
            }
            let verdict = r.notes.first().cloned().unwrap_or_default();
            let trailer = format!(
                "run converged: {verdict} at parallel time {:.1}",
                r.value("parallel_time").unwrap_or(f64::NAN)
            );
            Export {
                tables: vec![("dynamics".to_string(), table)],
                trailer: vec![trailer],
            }
        }),
    }
}
