//! The continuous-time model: layering Poisson holding times over the
//! discrete chain, as in [PVV09]/[DV12]. Continuous convergence time
//! concentrates on the discrete parallel time — the models are equivalent.
//!
//! Run with: `cargo run --release --example poisson_clock`

use avc::population::engine::{CountSim, Simulator};
use avc::population::time::ContinuousClock;
use avc::population::{Config, MajorityInstance};
use avc::protocols::Avc;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5_001u64;
    let instance = MajorityInstance::one_extra(n);
    let protocol = Avc::with_states(128)?;

    println!("run | parallel time (discrete) | continuous time (Poisson)");
    for run in 0..5u64 {
        let mut rng = SmallRng::seed_from_u64(run);
        let config = Config::from_input(&protocol, instance.a(), instance.b());
        let mut sim = CountSim::new(protocol.clone(), config);
        let mut clock = ContinuousClock::new(n);

        // Drive the discrete chain one interaction at a time, attaching an
        // Exponential(n) holding time to each step.
        loop {
            let advanced = sim.advance(&mut rng);
            clock.tick_many(&mut rng, advanced);
            let a = sim.count_a();
            if a == 0 || a == n {
                break;
            }
        }
        let parallel = sim.steps() as f64 / n as f64;
        println!("{run:>3} | {parallel:>24.2} | {:>25.2}", clock.elapsed());
    }
    println!("\nThe two columns agree to within O(1/sqrt(steps)) — the models are equivalent.");
    Ok(())
}
