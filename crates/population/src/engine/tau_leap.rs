//! τ-leaping: approximate accelerated simulation.
//!
//! Population protocols are chemical reaction networks (the paper's
//! motivating deployments are molecular \[CDS+13]), and the standard
//! accelerated simulator for CRNs is *τ-leaping* \[Gillespie 2001]: instead
//! of executing interactions one at a time, leap `τ` scheduler steps at
//! once and sample how often each reaction channel fired during the leap
//! from a Poisson approximation, holding rates frozen. The leap length is
//! chosen by the bounded-relative-change criterion, and the engine falls
//! back to exact stepping when leaping would not pay.
//!
//! Unlike the exact engines, trajectories are **approximate**: per-leap
//! rate freezing introduces `O(τ·(rate change))` bias. Convergence-time
//! distributions agree with the exact engines to within a few percent on
//! the workloads in this repository (see `tests/engine_equivalence.rs`),
//! but anything that needs exact semantics (the figure experiments, the
//! verification tools) uses the exact engines.

use crate::config::Config;
use crate::engine::{AdvanceReport, ChunkedSimulator, Simulator, StopCondition, StopReason};
use crate::faults::{Fault, FaultError};
use crate::protocol::{Opinion, Protocol, StateId};
use avc_telemetry::{NoopSink, Sink};
use rand::{Rng, RngCore};
use rand_distr::{Distribution, Poisson};

/// Relative-change control parameter of the leap-size criterion.
const ETA: f64 = 0.04;
/// Leaps shorter than this many steps are not worth the channel setup;
/// take exact steps instead.
const MIN_LEAP: f64 = 20.0;
/// How many times a leap is halved after producing negative counts before
/// giving up and stepping exactly.
const MAX_RETRIES: u32 = 8;

/// An approximate engine that advances many scheduler steps per call.
///
/// # Example
///
/// ```
/// use avc_population::engine::{Simulator, TauLeapSim};
/// use avc_population::protocol::tests_support::Voter;
/// use avc_population::Config;
/// use rand::SeedableRng;
///
/// let mut sim = TauLeapSim::new(Voter, Config::from_input(&Voter, 900, 100));
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
/// let out = sim.run_to_consensus(&mut rng, u64::MAX);
/// assert!(out.verdict.is_consensus());
/// // Far fewer engine calls than scheduler steps:
/// assert!(sim.events() < sim.steps() / 4);
/// ```
/// The `T` parameter is the telemetry [`Sink`] seam (see
/// [`CountSim`](super::CountSim) for the contract); the default
/// [`NoopSink`] compiles to nothing and leaves the RNG stream untouched.
#[derive(Debug, Clone)]
pub struct TauLeapSim<P, T = NoopSink> {
    protocol: P,
    counts: Vec<u64>,
    output_a: Vec<bool>,
    count_a: u64,
    unanimous: Option<StateId>,
    n: u64,
    steps: u64,
    /// Engine invocations that changed the configuration (leaps or exact
    /// steps) — the cost metric, analogous to productive events.
    events: u64,
    telemetry: T,
}

/// One reaction channel: an ordered productive species pair with its
/// per-step firing probability and its net species deltas.
struct Channel {
    rate: f64,
    deltas: [(StateId, i64); 4],
    len: usize,
}

impl<P: Protocol> TauLeapSim<P> {
    /// Creates an engine from an initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's state count differs from the
    /// protocol's, or the population has fewer than two agents.
    pub fn new(protocol: P, config: Config) -> TauLeapSim<P> {
        assert_eq!(
            config.num_states(),
            protocol.num_states(),
            "configuration does not match protocol state space"
        );
        let n = config.population();
        assert!(n >= 2, "need at least two agents, got {n}");
        let counts = config.into_counts();
        let output_a: Vec<bool> = (0..counts.len())
            .map(|q| protocol.output(q as StateId) == Opinion::A)
            .collect();
        let count_a = counts
            .iter()
            .zip(&output_a)
            .filter(|(_, &is_a)| is_a)
            .map(|(&c, _)| c)
            .sum();
        let unanimous = counts.iter().position(|&c| c == n).map(|i| i as StateId);
        TauLeapSim {
            protocol,
            counts,
            output_a,
            count_a,
            unanimous,
            n,
            steps: 0,
            events: 0,
            telemetry: NoopSink,
        }
    }
}

impl<P: Protocol, T: Sink> TauLeapSim<P, T> {
    /// Replaces the telemetry sink, rebinding the engine's type. All
    /// simulation state carries over untouched, so attaching telemetry is
    /// RNG-invisible.
    pub fn with_telemetry<T2: Sink>(self, telemetry: T2) -> TauLeapSim<P, T2> {
        TauLeapSim {
            protocol: self.protocol,
            counts: self.counts,
            output_a: self.output_a,
            count_a: self.count_a,
            unanimous: self.unanimous,
            n: self.n,
            steps: self.steps,
            events: self.events,
            telemetry,
        }
    }

    /// The attached telemetry sink.
    pub fn telemetry(&self) -> &T {
        &self.telemetry
    }

    /// The attached telemetry sink, mutably (for draining counts).
    pub fn telemetry_mut(&mut self) -> &mut T {
        &mut self.telemetry
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Builds the productive channels of the current configuration.
    fn channels(&self) -> Vec<Channel> {
        let total = (self.n * (self.n - 1)) as f64;
        let live: Vec<StateId> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i as StateId)
            .collect();
        let mut channels = Vec::new();
        for &i in &live {
            for &j in &live {
                let pairs = self.counts[i as usize] * (self.counts[j as usize] - u64::from(i == j));
                if pairs == 0 {
                    continue;
                }
                let (x, y) = self.protocol.transition(i, j);
                if (x == i && y == j) || (x == j && y == i) {
                    continue;
                }
                let mut deltas: [(StateId, i64); 4] = [(0, 0); 4];
                let mut len = 0;
                for (k, d) in [(i, -1i64), (j, -1), (x, 1), (y, 1)] {
                    if let Some(entry) = deltas.iter_mut().take(len).find(|e| e.0 == k) {
                        entry.1 += d;
                    } else {
                        deltas[len] = (k, d);
                        len += 1;
                    }
                }
                channels.push(Channel {
                    rate: pairs as f64 / total,
                    deltas,
                    len,
                });
            }
        }
        channels
    }

    /// The bounded-relative-change leap length for the given channels.
    fn leap_length(&self, channels: &[Channel]) -> f64 {
        // Per-species drift μ_k and diffusion σ²_k per step.
        let mut mu = vec![0.0f64; self.counts.len()];
        let mut var = vec![0.0f64; self.counts.len()];
        for ch in channels {
            for &(k, d) in ch.deltas.iter().take(ch.len) {
                if d != 0 {
                    mu[k as usize] += ch.rate * d as f64;
                    var[k as usize] += ch.rate * (d * d) as f64;
                }
            }
        }
        let mut tau = f64::INFINITY;
        for (k, &c) in self.counts.iter().enumerate() {
            let bound = (ETA * (c.max(1)) as f64).max(1.0);
            if mu[k] != 0.0 {
                tau = tau.min(bound / mu[k].abs());
            }
            if var[k] > 0.0 {
                tau = tau.min(bound * bound / var[k]);
            }
        }
        tau
    }

    /// Performs one exact SSA step: waits a geometric number of silent
    /// steps (implicitly, by sampling directly among the productive
    /// channels) and applies one reaction.
    fn exact_step<R: Rng + ?Sized>(&mut self, rng: &mut R, channels: &[Channel]) -> u64 {
        let total_rate: f64 = channels.iter().map(|c| c.rate).sum();
        if total_rate <= 0.0 {
            return 0;
        }
        // Steps until the next productive interaction (geometric, p = total_rate).
        let p = total_rate.min(1.0);
        let skipped = if p >= 1.0 {
            0
        } else {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            (u.ln() / (1.0 - p).ln()).floor() as u64
        };
        // Pick the channel.
        let mut r = rng.gen_range(0.0..total_rate);
        let mut chosen = channels.len() - 1;
        for (idx, ch) in channels.iter().enumerate() {
            if r < ch.rate {
                chosen = idx;
                break;
            }
            r -= ch.rate;
        }
        let ch = &channels[chosen];
        let deltas: Vec<(StateId, i64)> = ch.deltas.iter().take(ch.len).copied().collect();
        for (k, d) in deltas {
            self.apply_delta(k, d);
        }
        self.settle_unanimous();
        self.events += 1;
        let advanced = skipped.saturating_add(1);
        self.steps = self.steps.saturating_add(advanced);
        advanced
    }

    fn apply_delta(&mut self, k: StateId, delta: i64) {
        let idx = k as usize;
        let new = self.counts[idx] as i64 + delta;
        debug_assert!(new >= 0, "count underflow at state {k}");
        self.counts[idx] = new as u64;
        if self.output_a[idx] {
            self.count_a = (self.count_a as i64 + delta) as u64;
        }
        if self.counts[idx] == self.n {
            self.unanimous = Some(k);
        }
    }

    /// Re-validates the unanimity flag after a batch of deltas: a species
    /// recorded as unanimous mid-batch may have been decremented later.
    fn settle_unanimous(&mut self) {
        if let Some(k) = self.unanimous {
            if self.counts[k as usize] != self.n {
                self.unanimous = None;
            }
        }
    }

    /// One leap (or exact-step fallback). Returns steps advanced, `0` if
    /// silent. Generic over the RNG so chunked loops inline the Poisson
    /// draws end to end.
    #[inline]
    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let channels = self.channels();
        if channels.is_empty() {
            return 0;
        }
        let mut tau = self.leap_length(&channels);
        if !tau.is_finite() || tau < MIN_LEAP {
            return self.exact_step(rng, &channels);
        }

        for _ in 0..=MAX_RETRIES {
            // Sample firing counts for every channel over ⌊τ⌋ steps.
            let leap = tau.floor().max(MIN_LEAP);
            let mut net = vec![0i64; self.counts.len()];
            for ch in &channels {
                let mean = leap * ch.rate;
                let firings = if mean > 0.0 {
                    Poisson::new(mean).expect("positive mean").sample(rng) as i64
                } else {
                    0
                };
                if firings == 0 {
                    continue;
                }
                for &(k, d) in ch.deltas.iter().take(ch.len) {
                    net[k as usize] += d * firings;
                }
            }
            let feasible = self
                .counts
                .iter()
                .zip(&net)
                .all(|(&c, &d)| c as i64 + d >= 0);
            if !feasible {
                tau /= 2.0;
                if tau < MIN_LEAP {
                    return self.exact_step(rng, &channels);
                }
                continue;
            }
            let mut changed = false;
            for (k, &d) in net.iter().enumerate() {
                if d != 0 {
                    self.apply_delta(k as StateId, d);
                    changed = true;
                }
            }
            self.settle_unanimous();
            if changed {
                self.events += 1;
            }
            let advanced = leap as u64;
            self.steps = self.steps.saturating_add(advanced);
            return advanced;
        }
        self.exact_step(rng, &channels)
    }
}

impl<P: Protocol, T: Sink> Simulator for TauLeapSim<P, T> {
    fn population(&self) -> u64 {
        self.n
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn events(&self) -> u64 {
        self.events
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn count_a(&self) -> u64 {
        self.count_a
    }

    fn unanimous_state(&self) -> Option<StateId> {
        self.unanimous
    }

    fn state_output(&self, state: StateId) -> Opinion {
        self.protocol.output(state)
    }

    fn config_is_silent(&self) -> bool {
        self.protocol.config_silent(&self.counts)
    }

    fn inject(&mut self, fault: Fault) -> Result<u64, FaultError> {
        let Fault::Corrupt { from, to, agents } = fault else {
            return Err(FaultError::Unsupported {
                engine: "TauLeapSim",
                fault,
            });
        };
        let s = self.protocol.num_states();
        if from >= s || to >= s {
            return Err(FaultError::OutOfRange {
                detail: format!("corrupt {from}->{to} with only {s} protocol states"),
            });
        }
        if from == to {
            return Ok(0);
        }
        let moved = agents.min(self.counts[from as usize]);
        if moved == 0 {
            return Ok(0);
        }
        self.apply_delta(from, -(moved as i64));
        self.apply_delta(to, moved as i64);
        self.settle_unanimous();
        self.telemetry.on_fault();
        Ok(moved)
    }

    fn advance(&mut self, rng: &mut dyn RngCore) -> u64 {
        self.step(rng)
    }

    fn advance_upto(&mut self, rng: &mut dyn RngCore, stop: StopCondition) -> AdvanceReport {
        self.advance_chunk(rng, stop)
    }
}

impl<P: Protocol, T: Sink> ChunkedSimulator for TauLeapSim<P, T> {
    fn advance_chunk<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        stop: StopCondition,
    ) -> AdvanceReport {
        let (steps0, events0) = (self.steps, self.events);
        // Configuration state is only observable at leap boundaries, so
        // predicates resolve at the first boundary where they hold; both
        // the budget and (because whole leaps apply at once) predicate
        // crossings can land past their exact step — inherent to the
        // engine's approximation, not to chunking.
        let reason = loop {
            if stop.predicate_hit(self.count_a, self.unanimous.is_some()) {
                break StopReason::Predicate;
            }
            if self.steps >= stop.max_steps {
                break StopReason::StepBudget;
            }
            if self.step(rng) == 0 {
                break StopReason::Silent;
            }
        };
        let report = AdvanceReport {
            steps: self.steps - steps0,
            events: self.events - events0,
            reason,
        };
        self.telemetry.on_chunk(report.steps, report.events);
        report
    }

    fn reset(&mut self, config: &Config) {
        assert_eq!(
            config.num_states(),
            self.protocol.num_states(),
            "configuration does not match protocol state space"
        );
        let n = config.population();
        assert!(n >= 2, "need at least two agents, got {n}");
        self.counts.copy_from_slice(config.as_slice());
        self.count_a = self
            .counts
            .iter()
            .zip(&self.output_a)
            .filter(|(_, &is_a)| is_a)
            .map(|(&c, _)| c)
            .sum();
        self.unanimous = self
            .counts
            .iter()
            .position(|&c| c == n)
            .map(|i| i as StateId);
        self.n = n;
        self.steps = 0;
        self.events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CountSim;
    use crate::protocol::tests_support::{Annihilate, Voter};
    use crate::rngutil::SeedSequence;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn conserves_population() {
        let mut sim = TauLeapSim::new(Voter, Config::from_input(&Voter, 700, 300));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            if sim.advance(&mut rng) == 0 {
                break;
            }
            assert_eq!(sim.counts().iter().sum::<u64>(), 1_000);
            let recount: u64 = sim
                .counts()
                .iter()
                .zip(&sim.output_a)
                .filter(|(_, &a)| a)
                .map(|(&c, _)| c)
                .sum();
            assert_eq!(recount, sim.count_a());
        }
    }

    #[test]
    fn reaches_consensus_and_leaps() {
        let mut sim = TauLeapSim::new(Voter, Config::from_input(&Voter, 1_800, 200));
        let mut rng = SmallRng::seed_from_u64(2);
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!(out.verdict.is_consensus());
        assert!(
            sim.events() < sim.steps() / 4,
            "expected leaping: {} events for {} steps",
            sim.events(),
            sim.steps()
        );
    }

    #[test]
    fn silent_configuration_is_terminal() {
        let mut sim = TauLeapSim::new(Annihilate, Config::from_counts(vec![5, 0, 5]));
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(sim.advance(&mut rng), 0);
        assert!(sim.config_is_silent());
    }

    #[test]
    fn mean_convergence_time_matches_exact_engine() {
        // Statistical agreement with CountSim on the voter model within 10%.
        let seeds = SeedSequence::new(4);
        let trials = 60;
        let mut tau_mean = 0.0;
        let mut exact_mean = 0.0;
        for t in 0..trials {
            let mut rng = seeds.rng_for(t);
            let mut sim = TauLeapSim::new(Voter, Config::from_input(&Voter, 1_500, 500));
            tau_mean += sim.run_to_consensus(&mut rng, u64::MAX).parallel_time;
            let mut rng = seeds.child(1).rng_for(t);
            let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 1_500, 500));
            exact_mean += sim.run_to_consensus(&mut rng, u64::MAX).parallel_time;
        }
        tau_mean /= trials as f64;
        exact_mean /= trials as f64;
        let ratio = tau_mean / exact_mean;
        assert!(
            (0.85..1.15).contains(&ratio),
            "tau {tau_mean} vs exact {exact_mean}"
        );
    }

    #[test]
    fn annihilation_endpoint_is_exact_despite_leaping() {
        // The invariant c0 − c1 survives Poisson leaping because every
        // channel preserves it.
        let mut sim = TauLeapSim::new(Annihilate, Config::from_input(&Annihilate, 2_600, 1_400));
        let mut rng = SmallRng::seed_from_u64(5);
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!(out.verdict.is_consensus());
        assert_eq!(sim.counts()[0], 1_200);
        assert_eq!(sim.counts()[1], 0);
        assert_eq!(sim.counts()[2], 2_800);
    }
}
