//! Leader election — the paper's §6 open question asks whether the
//! average-and-conquer technique extends to it. This example runs the
//! classical pairwise-elimination baseline and measures its Θ(n) parallel
//! time, the mark any averaging-style improvement would have to beat.
//!
//! Run with: `cargo run --release --example leader_election`

use avc::analysis::stats::Summary;
use avc::analysis::table::{fmt_num, Table};
use avc::population::engine::{JumpSim, Simulator};
use avc::population::rngutil::SeedSequence;
use avc::population::{Config, ConvergenceRule, Opinion};
use avc::protocols::LeaderElection;

fn main() {
    let one_leader = ConvergenceRule::OutputCount {
        opinion: Opinion::A,
        count: 1,
    };
    let runs = 40u64;
    let seeds = SeedSequence::new(1);

    let mut table = Table::new(
        format!("classical leader election, {runs} runs per n"),
        ["n", "mean_parallel_time", "std_dev", "time / n"],
    );
    for (i, n) in [100u64, 300, 1_000, 3_000].into_iter().enumerate() {
        let mut times = Vec::new();
        for trial in 0..runs {
            let mut rng = seeds.child(i as u64).rng_for(trial);
            let config = Config::from_counts(vec![n, 0]); // everyone contends
            let mut sim = JumpSim::new(LeaderElection, config);
            let out = sim.run_to_consensus_with(&mut rng, u64::MAX, one_leader);
            assert!(out.verdict.is_consensus());
            assert_eq!(sim.counts()[0], 1, "exactly one leader must remain");
            times.push(out.parallel_time);
        }
        let summary = Summary::from_samples(&times);
        table.push_row([
            n.to_string(),
            fmt_num(summary.mean),
            fmt_num(summary.std_dev),
            fmt_num(summary.mean / n as f64),
        ]);
    }

    println!("{}", table.to_markdown());
    println!(
        "time/n is flat: the classical protocol is Θ(n) — the paper asks whether\n\
         average-and-conquer states can elect a leader polylogarithmically."
    );
}
