//! The mean-field (ODE) limit of the three-state protocol.
//!
//! \[PVV09] analyze the three-state protocol through its large-`n` limit: as
//! `n → ∞` the state *fractions* `(x, y, b)` concentrate on the solution of
//!
//! ```text
//! ẋ = x·b − x·y
//! ẏ = y·b − x·y
//! ḃ = 2·x·y − b·(x + y)
//! ```
//!
//! (time in parallel-time units; the derivation counts, per scheduler step,
//! the four productive ordered-pair types of the protocol). The margin
//! `x − y` satisfies `d(x−y)/dt = b·(x−y)`, so it grows exponentially once
//! blanks exist — the mechanism behind the protocol's
//! `O(log(1/ε) + log n)` convergence. This module integrates the system
//! with a classical RK4 scheme and is validated against large-`n`
//! simulations in `tests/mean_field_vs_simulation.rs`.

/// A point of the three-state mean-field trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldPoint {
    /// Parallel time.
    pub time: f64,
    /// Fraction of agents in state `x` (opinion `A`).
    pub x: f64,
    /// Fraction of agents in state `y` (opinion `B`).
    pub y: f64,
    /// Fraction of blank agents.
    pub blank: f64,
}

/// The vector field of the three-state dynamics.
#[must_use]
pub fn three_state_field(x: f64, y: f64, b: f64) -> (f64, f64, f64) {
    (x * b - x * y, y * b - x * y, 2.0 * x * y - b * (x + y))
}

/// Integrates the three-state mean-field ODE with RK4 from fractions
/// `(x0, y0)` (blanks start at `1 − x0 − y0`), recording every step.
///
/// # Panics
///
/// Panics if the initial fractions are not a sub-distribution, or `dt` is
/// not positive.
#[must_use]
pub fn three_state_limit(x0: f64, y0: f64, dt: f64, t_max: f64) -> Vec<FieldPoint> {
    assert!(dt > 0.0, "dt must be positive");
    assert!(
        x0 >= 0.0 && y0 >= 0.0 && x0 + y0 <= 1.0 + 1e-12,
        "fractions must form a sub-distribution"
    );
    let mut x = x0;
    let mut y = y0;
    let mut b = (1.0 - x0 - y0).max(0.0);
    let mut t = 0.0;
    let mut out = vec![FieldPoint {
        time: t,
        x,
        y,
        blank: b,
    }];
    while t < t_max {
        let (k1x, k1y, k1b) = three_state_field(x, y, b);
        let (k2x, k2y, k2b) =
            three_state_field(x + 0.5 * dt * k1x, y + 0.5 * dt * k1y, b + 0.5 * dt * k1b);
        let (k3x, k3y, k3b) =
            three_state_field(x + 0.5 * dt * k2x, y + 0.5 * dt * k2y, b + 0.5 * dt * k2b);
        let (k4x, k4y, k4b) = three_state_field(x + dt * k3x, y + dt * k3y, b + dt * k3b);
        x += dt / 6.0 * (k1x + 2.0 * k2x + 2.0 * k3x + k4x);
        y += dt / 6.0 * (k1y + 2.0 * k2y + 2.0 * k3y + k4y);
        b += dt / 6.0 * (k1b + 2.0 * k2b + 2.0 * k3b + k4b);
        t += dt;
        out.push(FieldPoint {
            time: t,
            x,
            y,
            blank: b,
        });
    }
    out
}

/// First time at which the minority mass `y + blank` drops below
/// `threshold` along a trajectory, if it does.
#[must_use]
pub fn limit_convergence_time(trajectory: &[FieldPoint], threshold: f64) -> Option<f64> {
    trajectory
        .iter()
        .find(|p| p.y + p.blank < threshold)
        .map(|p| p.time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_conserves_total_mass() {
        for (x, y, b) in [(0.5, 0.4, 0.1), (0.9, 0.05, 0.05), (0.1, 0.1, 0.8)] {
            let (dx, dy, db) = three_state_field(x, y, b);
            assert!((dx + dy + db).abs() < 1e-15);
        }
    }

    #[test]
    fn margin_grows_exponentially_with_blanks() {
        // d(x−y)/dt = b(x−y): with constant-ish b ≈ 0.5 the margin should
        // roughly double every ln(2)/0.5 ≈ 1.39 time units.
        let traj = three_state_limit(0.3, 0.25, 1e-3, 2.0);
        let m0 = traj[0].x - traj[0].y;
        let m_end = traj.last().unwrap().x - traj.last().unwrap().y;
        assert!(m_end > 1.8 * m0, "margin {m0} -> {m_end}");
    }

    #[test]
    fn trajectory_stays_a_distribution() {
        let traj = three_state_limit(0.55, 0.45, 1e-3, 30.0);
        for p in &traj {
            assert!((p.x + p.y + p.blank - 1.0).abs() < 1e-9);
            assert!(p.x >= -1e-9 && p.y >= -1e-9 && p.blank >= -1e-9);
        }
    }

    #[test]
    fn majority_wins_in_the_limit() {
        let traj = three_state_limit(0.52, 0.48, 1e-3, 60.0);
        let last = traj.last().unwrap();
        assert!(last.x > 0.999, "x should absorb: {last:?}");
        assert!(last.y < 1e-3 && last.blank < 1e-3);
    }

    #[test]
    fn convergence_time_scales_with_log_margin() {
        // O(log(1/ε) + log n) shape: halving the margin adds ≈ ln 2 / 1
        // time units once the dynamics is in its exponential phase.
        let t1 = limit_convergence_time(&three_state_limit(0.52, 0.48, 1e-3, 100.0), 1e-6)
            .expect("converges");
        let t2 = limit_convergence_time(&three_state_limit(0.51, 0.49, 1e-3, 100.0), 1e-6)
            .expect("converges");
        assert!(t2 > t1, "smaller margin must be slower");
        assert!(t2 - t1 < 5.0, "but only additively: {t1} vs {t2}");
    }

    #[test]
    #[should_panic(expected = "sub-distribution")]
    fn rejects_overfull_input() {
        let _ = three_state_limit(0.8, 0.4, 0.1, 1.0);
    }
}
