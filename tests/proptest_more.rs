//! Second property-test suite: randomized protocols against the exact
//! solver, graph-generator invariants, composition laws, and witness
//! replay round-trips.

use avc::population::graph::Graph;
use avc::population::spectral::{spectral_gap, PowerIterationOptions};
use avc::population::{Config, ConvergenceRule, Opinion, StateId};
use avc::protocols::compose::{Lead, Parallel};
use avc::protocols::{FourState, Voter};
use avc::verify::table_protocol::TableProtocol;
use avc::verify::witness::{find_schedule, replay_schedule};
use proptest::prelude::*;

/// A random symmetric three-state protocol (the family the MNRS14
/// impossibility quantifies over).
fn random_three_state() -> impl Strategy<Value = TableProtocol> {
    let pairs = [(0u32, 0u32), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)];
    (proptest::collection::vec(0usize..6, 6), proptest::bool::ANY).prop_map(
        move |(choices, third_a)| {
            let outputs = vec![
                Opinion::A,
                Opinion::B,
                if third_a { Opinion::A } else { Opinion::B },
            ];
            TableProtocol::symmetric(3, outputs, (0, 1), |a, b| {
                let idx = pairs.iter().position(|&p| p == (a, b)).expect("pair");
                pairs[choices[idx]]
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any random three-state protocol, the Monte-Carlo engine's mean
    /// convergence time is statistically consistent with the exact
    /// absorbing-chain solution (when a finite one exists).
    #[test]
    fn exact_solver_agrees_with_simulation_on_random_protocols(
        protocol in random_three_state(),
        a in 1u64..4,
        b in 1u64..4,
    ) {
        use avc::population::engine::{CountSim, Simulator};
        use avc::population::rngutil::SeedSequence;
        use avc::verify::exact_time::expected_steps_to_convergence;

        let initial = Config::from_input(&protocol, a, b);
        let exact = expected_steps_to_convergence(
            &protocol,
            &initial,
            ConvergenceRule::OutputConsensus,
            100_000,
        )
        .expect("tiny state space");
        let Some(exact) = exact else {
            return Ok(()); // infinite expectation: nothing to compare
        };
        if exact == 0.0 {
            return Ok(());
        }
        let seeds = SeedSequence::new(5);
        let trials = 300;
        let mut mean = 0.0;
        for t in 0..trials {
            let mut rng = seeds.rng_for(t);
            let mut sim = CountSim::new(protocol.clone(), Config::from_input(&protocol, a, b));
            let out = sim.run_to_consensus(&mut rng, u64::MAX);
            prop_assert!(out.verdict.is_consensus(), "finite expectation implies a.s. absorption");
            mean += out.steps as f64;
        }
        mean /= trials as f64;
        // Geometric-mixture tails are heavy; 6 standard-error-ish slack via
        // a crude bound (std ≤ ~2·mean for these tiny chains).
        let slack = 12.0 * exact / (trials as f64).sqrt() + 2.0;
        prop_assert!(
            (mean - exact).abs() < slack,
            "simulated {mean} vs exact {exact} (slack {slack})"
        );
    }

    /// Graph generators produce structurally valid graphs.
    #[test]
    fn graph_generators_are_structurally_sound(n in 4usize..40, k in 2usize..6) {
        let k = if (n * k) % 2 == 1 { k + 1 } else { k };
        if k >= n { return Ok(()); }
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(n as u64);
        let g = Graph::random_regular(n, k, &mut rng);
        prop_assert_eq!(g.num_edges(), n * k / 2);
        let mut degree = vec![0usize; n];
        for (u, v) in g.edge_pairs() {
            prop_assert!(u != v);
            degree[u] += 1;
            degree[v] += 1;
        }
        prop_assert!(degree.iter().all(|&d| d == k));
    }

    /// The spectral gap of a connected graph lies in (0, 2].
    #[test]
    fn spectral_gap_is_in_range(n in 4usize..24) {
        for g in [Graph::clique(n), Graph::cycle(n), Graph::star(n), Graph::path(n)] {
            let gap = spectral_gap(&g, PowerIterationOptions::default());
            prop_assert!(gap > 0.0 && gap <= 2.0 + 1e-9, "gap {gap}");
        }
    }

    /// Parallel composition projects onto its components: simulating the
    /// composite and projecting counts equals what each component's
    /// transition structure allows (sum preservation + component closure).
    #[test]
    fn composition_projects_onto_components(seed in any::<u64>()) {
        use avc::population::engine::{CountSim, Simulator};
        use rand::SeedableRng;
        let composite = Parallel::new(FourState, Voter, Lead::First);
        let config = Config::from_input(&composite, 6, 5);
        let mut sim = CountSim::new(composite.clone(), config);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            sim.advance(&mut rng);
        }
        // Project composite counts to each component and verify the
        // four-state value invariant survived inside the composite.
        let mut first_counts = [0u64; 4];
        for (s, &c) in sim.counts().iter().enumerate() {
            let (f, _) = composite.unpack(s as StateId);
            first_counts[f as usize] += c;
        }
        let value: i64 = first_counts[0] as i64 - first_counts[1] as i64;
        prop_assert_eq!(value, 1, "strong-difference invariant broken in composite");
        prop_assert_eq!(first_counts.iter().sum::<u64>(), 11);
    }

    /// Any schedule found by the witness search replays successfully and
    /// ends in a configuration satisfying the goal.
    #[test]
    fn witness_schedules_replay_to_their_goal(a in 1u64..5, b in 1u64..5, target in 0u32..3) {
        let protocol = avc::protocols::ThreeState::new();
        let initial = Config::from_input(&protocol, a, b);
        let goal = move |c: &[u64]| c[target as usize] == 0;
        if let Some(schedule) =
            find_schedule(&protocol, &initial, 100_000, goal).expect("small space")
        {
            let end = replay_schedule(&protocol, &initial, &schedule).expect("replayable");
            prop_assert_eq!(end.count(target), 0);
            prop_assert_eq!(end.population(), a + b);
        }
    }
}
