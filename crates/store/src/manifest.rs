//! Run manifests: the content-addressed identity of one sweep cell.
//!
//! A cell (one `(parameters, seed, trials)` point of an experiment grid) is
//! keyed by the SHA-256 of its canonical manifest serialization. The
//! manifest captures everything the cell's *results* depend on — protocol,
//! engine, convergence rule, graph, population parameters, effective seed,
//! and trial count — and deliberately excludes anything they do not, most
//! importantly the [`Parallelism`](avc_analysis::harness::Parallelism)
//! setting: PR 1's per-trial RNG streams make results bit-identical at every
//! worker count, so a sweep interrupted under `--threads 8` can resume under
//! `--serial` and still produce byte-identical exports.

use crate::hash::sha256_hex;
use crate::json::Json;
use std::collections::BTreeMap;

/// Version of the on-disk record/manifest layout. Bump on any change to the
/// serialization; readers reject records from other schema versions.
pub const SCHEMA_VERSION: i64 = 1;

/// The identity of one sweep cell: experiment name plus the parameter map
/// that uniquely determines its results.
///
/// # Example
///
/// ```
/// use avc_store::manifest::Manifest;
///
/// let m = Manifest::new("fig3", [("n", "101"), ("protocol", "avc")]);
/// assert_eq!(m.hash().len(), 64);
/// // Same parameters, any insertion order → same hash.
/// let m2 = Manifest::new("fig3", [("protocol", "avc"), ("n", "101")]);
/// assert_eq!(m.hash(), m2.hash());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Sweep spec name (`fig3`, `fig4`, `lb_info`, …).
    pub experiment: String,
    /// Cell parameters. Keys are sorted in the canonical form, so insertion
    /// order never affects the hash. Floating-point parameters must be
    /// entered via [`crate::record::f64_to_hex`] (plus an optional
    /// human-readable duplicate under another key) to keep the identity
    /// exact.
    pub params: BTreeMap<String, String>,
}

impl Manifest {
    /// Builds a manifest from an experiment name and parameter pairs.
    pub fn new<K: Into<String>, V: Into<String>>(
        experiment: impl Into<String>,
        params: impl IntoIterator<Item = (K, V)>,
    ) -> Manifest {
        Manifest {
            experiment: experiment.into(),
            params: params
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }

    /// The canonical serialization: compact JSON with sorted keys, including
    /// the schema version. This exact byte string is the hash preimage.
    #[must_use]
    pub fn canonical(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// The cell's content hash: lowercase hex SHA-256 of [`canonical`].
    ///
    /// [`canonical`]: Manifest::canonical
    #[must_use]
    pub fn hash(&self) -> String {
        sha256_hex(self.canonical().as_bytes())
    }

    /// A parameter value, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// Serializes to JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Int(SCHEMA_VERSION)),
            ("experiment", Json::str(&self.experiment)),
            (
                "params",
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Rejects documents with the wrong shape or a foreign schema version.
    pub fn from_json(json: &Json) -> Result<Manifest, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_int)
            .ok_or("manifest missing schema")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "manifest schema {schema} unsupported (expected {SCHEMA_VERSION})"
            ));
        }
        let experiment = json
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or("manifest missing experiment")?
            .to_string();
        let params = json
            .get("params")
            .and_then(Json::as_obj)
            .ok_or("manifest missing params")?
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("param {k} is not a string"))
            })
            .collect::<Result<BTreeMap<_, _>, _>>()?;
        Ok(Manifest { experiment, params })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_param_sensitive() {
        let base = Manifest::new("fig3", [("n", "101"), ("seed", "5")]);
        assert_eq!(base.hash(), base.clone().hash());
        let other = Manifest::new("fig3", [("n", "101"), ("seed", "6")]);
        assert_ne!(base.hash(), other.hash());
        let renamed = Manifest::new("fig4", [("n", "101"), ("seed", "5")]);
        assert_ne!(base.hash(), renamed.hash());
    }

    #[test]
    fn canonical_form_sorts_keys() {
        let m = Manifest::new("x", [("zz", "1"), ("aa", "2")]);
        let canon = m.canonical();
        assert!(canon.find("aa").unwrap() < canon.find("zz").unwrap());
        assert!(canon.contains("\"schema\":1"));
    }

    #[test]
    fn json_roundtrip() {
        let m = Manifest::new(
            "graph_gap",
            [("topology", "random 6-regular"), ("n", "300")],
        );
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
        assert_eq!(m.hash(), back.hash());
    }

    #[test]
    fn rejects_foreign_schema() {
        let mut json = Manifest::new("x", [("a", "1")]).to_json();
        if let Json::Obj(map) = &mut json {
            map.insert("schema".to_string(), Json::Int(99));
        }
        assert!(Manifest::from_json(&json).is_err());
    }
}
