//! The unified experiment CLI.
//!
//! Usage: `avc sweep|resume|export|ls|show|help ...` — see `avc help` or
//! `EXPERIMENTS.md`.

fn main() {
    std::process::exit(avc_store::cli::main());
}
