//! Plain-text result tables (CSV and markdown).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular result table with named columns.
///
/// The experiment binaries emit every figure of the paper as one of these,
/// both to stdout (markdown) and to `results/*.csv`.
///
/// # Example
///
/// ```
/// use avc_analysis::table::Table;
///
/// let mut t = Table::new("demo", ["n", "time"]);
/// t.push_row(["11", "1.5"]);
/// assert!(t.to_csv().starts_with("n,time\n11,1.5"));
/// assert!(t.to_markdown().contains("| 11 | 1.5"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    pub fn new<C: Into<String>>(
        title: impl Into<String>,
        columns: impl IntoIterator<Item = C>,
    ) -> Table {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        assert!(!columns.is_empty(), "a table needs at least one column");
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the number of columns.
    pub fn push_row<C: Into<String>>(&mut self, row: impl IntoIterator<Item = C>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as CSV (RFC-4180-style quoting for commas/quotes/newlines).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| csv_quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.columns);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table with a title line.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        out.push('\n');
        let emit_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(out, " {cell:<w$} |");
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.columns);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }

    /// Writes the CSV rendering to `path` atomically (write `*.tmp`, fsync,
    /// rename — see [`crate::io::atomic_write`]), creating parent
    /// directories. An interrupted experiment can therefore never leave a
    /// torn `results/*.csv` behind.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        crate::io::atomic_write(path, self.to_csv())
    }
}

fn csv_quote(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a float for tables: integers print bare, other values keep four
/// significant digits (scientific notation below `10⁻⁴`).
///
/// # Example
///
/// ```
/// use avc_analysis::table::fmt_num;
/// assert_eq!(fmt_num(42.0), "42");
/// assert_eq!(fmt_num(0.001234), "0.001234");
/// assert_eq!(fmt_num(1234.567), "1234.57");
/// ```
#[must_use]
pub fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else if x.abs() >= 1e-4 {
        // Four significant digits for sub-unit values, trailing zeros trimmed.
        let decimals = (3 - x.abs().log10().floor() as i32) as usize;
        let s = format!("{x:.decimals$}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_simple() {
        let mut t = Table::new("t", ["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_row(["3", "4"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("t", ["a"]);
        t.push_row(["x,y"]);
        t.push_row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn markdown_aligns_columns() {
        let mut t = Table::new("demo title", ["name", "v"]);
        t.push_row(["long-name", "1"]);
        let md = t.to_markdown();
        assert!(md.starts_with("### demo title"));
        assert!(md.contains("| name      | v |"));
        assert!(md.contains("| long-name | 1 |"));
        assert!(md.contains("|-----------|---|"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", ["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_schema() {
        let _ = Table::new("t", Vec::<String>::new());
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("avc-table-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("t", ["a"]);
        t.push_row(["1"]);
        let path = dir.join("nested").join("out.csv");
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_num_styles() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(10.0), "10");
        assert_eq!(fmt_num(0.25), "0.25");
        assert_eq!(fmt_num(6.54321), "6.54");
        assert_eq!(fmt_num(0.001234), "0.001234");
        assert_eq!(fmt_num(0.00001), "1.000e-5");
    }
}
