//! Criterion microbenchmarks of the protocol transition functions — the
//! inner loop of every engine.

use avc_population::Protocol;
use avc_protocols::{Avc, FourState, ThreeState};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_transitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition_full_table");

    group.bench_function("four_state", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in 0..4 {
                for bb in 0..4 {
                    let (x, y) = FourState.transition(black_box(a), black_box(bb));
                    acc = acc.wrapping_add(x + y);
                }
            }
            acc
        })
    });

    group.bench_function("three_state", |b| {
        let p = ThreeState::new();
        b.iter(|| {
            let mut acc = 0u32;
            for a in 0..3 {
                for bb in 0..3 {
                    let (x, y) = p.transition(black_box(a), black_box(bb));
                    acc = acc.wrapping_add(x + y);
                }
            }
            acc
        })
    });

    for m in [15u64, 255, 4_095] {
        let avc = Avc::new(m, 1).expect("odd m");
        let s = avc.num_states();
        group.bench_with_input(BenchmarkId::new("avc_full_table", m), &m, |b, _| {
            b.iter(|| {
                let mut acc = 0u32;
                // Sample a diagonal band instead of the full s^2 table to
                // keep iteration counts comparable across m.
                for a in (0..s).step_by((s as usize / 64).max(1)) {
                    for bb in (0..s).step_by((s as usize / 64).max(1)) {
                        let (x, y) = avc.transition(black_box(a), black_box(bb));
                        acc = acc.wrapping_add(x + y);
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transitions);
criterion_main!(benches);
