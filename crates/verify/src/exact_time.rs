//! Exact expected convergence times via the absorbing-chain linear system.
//!
//! For small populations the configuration space is small enough to treat
//! the protocol as an explicit absorbing Markov chain: each configuration
//! `c` satisfies
//!
//! ```text
//! E[T | c] = 1 + Σ_{c'} P(c → c') · E[T | c']
//! ```
//!
//! with `E[T | absorbing] = 0`, where `P` counts ordered agent pairs (a
//! configuration's self-loop probability is its silent-pair weight over
//! `n(n−1)`). Solving the linear system gives *exact* expected hitting
//! times, against which the Monte-Carlo engines are validated — a much
//! sharper check than engine-vs-engine comparison.

use crate::reach::{ReachabilityGraph, StateSpaceTooLarge};
use avc_population::{Config, ConvergenceRule, Opinion, Protocol, StateId};

/// Exact expected steps to convergence from `initial`, where convergence is
/// defined by `rule` (self-loops included in the step count, matching the
/// discrete scheduler).
///
/// Returns `None` if some reachable configuration cannot reach an absorbing
/// one (the expectation is infinite).
///
/// # Errors
///
/// Returns [`StateSpaceTooLarge`] if the closure exceeds `max_configs`.
///
/// # Panics
///
/// Panics if `rule` is [`ConvergenceRule::OutputCount`] with a target that
/// the chain treats as transient in both directions (unsupported), or on a
/// numerically singular system (cannot happen for a well-formed absorbing
/// chain).
pub fn expected_steps_to_convergence<P: Protocol>(
    protocol: &P,
    initial: &Config,
    rule: ConvergenceRule,
    max_configs: usize,
) -> Result<Option<f64>, StateSpaceTooLarge> {
    let graph = ReachabilityGraph::explore(protocol, initial, max_configs)?;
    let n = initial.population();
    let total_pairs = (n * (n - 1)) as f64;
    let count = graph.len();

    // Identify absorbing configurations under the rule.
    let absorbing: Vec<bool> = (0..count)
        .map(|id| is_converged(protocol, &graph, id, n, rule))
        .collect();

    if absorbing[0] {
        return Ok(Some(0.0));
    }

    // Transient configurations from which absorption is impossible have
    // infinite expectation.
    let can_absorb = graph.can_reach(&absorbing);
    if can_absorb.iter().any(|&r| !r) {
        return Ok(None);
    }

    // Index the transient configurations.
    let transient: Vec<usize> = (0..count).filter(|&id| !absorbing[id]).collect();
    if transient.is_empty() {
        return Ok(Some(0.0));
    }
    let index_of: std::collections::HashMap<usize, usize> = transient
        .iter()
        .enumerate()
        .map(|(row, &id)| (id, row))
        .collect();

    // Build (I − Q)·x = 1 over transient states, where Q holds transition
    // probabilities among transient configurations. P(c → c') is the number
    // of ordered agent pairs of `c` whose interaction yields `c'`, over
    // n(n−1); the implicit remainder is the self-loop.
    let t = transient.len();
    let mut matrix = vec![0.0f64; t * t];
    let mut rhs = vec![1.0f64; t];
    for (row, &id) in transient.iter().enumerate() {
        matrix[row * t + row] = 1.0;
        let counts = graph.config(id);
        let live: Vec<StateId> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i as StateId)
            .collect();
        let mut self_loop_pairs = 0u64;
        for &i in &live {
            for &j in &live {
                let weight = counts[i as usize] * (counts[j as usize] - u64::from(i == j));
                if weight == 0 {
                    continue;
                }
                let (x, y) = protocol.transition(i, j);
                if (x == i && y == j) || (x == j && y == i) {
                    self_loop_pairs += weight;
                    continue;
                }
                let mut next = counts.to_vec();
                next[i as usize] -= 1;
                next[j as usize] -= 1;
                next[x as usize] += 1;
                next[y as usize] += 1;
                let succ = graph
                    .find_config(&next)
                    .expect("successor must be in the closure");
                let p = weight as f64 / total_pairs;
                if let Some(&col) = index_of.get(&succ) {
                    matrix[row * t + col] -= p;
                }
            }
        }
        // Self-loop: move to the diagonal.
        matrix[row * t + row] -= self_loop_pairs as f64 / total_pairs;
    }

    let solution = solve_dense(&mut matrix, &mut rhs, t);
    let root_row = index_of
        .get(&0)
        .copied()
        .expect("initial configuration is transient here");
    Ok(Some(solution[root_row]))
}

/// Whether configuration `id` satisfies the convergence rule.
fn is_converged<P: Protocol>(
    protocol: &P,
    graph: &ReachabilityGraph,
    id: usize,
    n: u64,
    rule: ConvergenceRule,
) -> bool {
    match rule {
        ConvergenceRule::OutputConsensus => {
            graph.all_output(protocol, id, Opinion::A) || graph.all_output(protocol, id, Opinion::B)
        }
        ConvergenceRule::StateConsensus => graph.config(id).contains(&n),
        ConvergenceRule::Silence => {
            avc_population::engine::config_silent(protocol, graph.config(id))
        }
        ConvergenceRule::OutputCount { opinion, count } => {
            let with: u64 = graph
                .config(id)
                .iter()
                .enumerate()
                .filter(|(s, _)| protocol.output(*s as StateId) == opinion)
                .map(|(_, &c)| c)
                .sum();
            with == count
        }
    }
}

/// In-place Gaussian elimination with partial pivoting.
///
/// # Panics
///
/// Panics on a singular matrix.
fn solve_dense(matrix: &mut [f64], rhs: &mut [f64], t: usize) -> Vec<f64> {
    for col in 0..t {
        // Pivot.
        let pivot_row = (col..t)
            .max_by(|&a, &b| {
                matrix[a * t + col]
                    .abs()
                    .partial_cmp(&matrix[b * t + col].abs())
                    .expect("no NaN in chain matrix")
            })
            .expect("nonempty range");
        assert!(
            matrix[pivot_row * t + col].abs() > 1e-12,
            "singular system: chain is not absorbing as expected"
        );
        if pivot_row != col {
            for k in 0..t {
                matrix.swap(col * t + k, pivot_row * t + k);
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        let pivot = matrix[col * t + col];
        for row in col + 1..t {
            let factor = matrix[row * t + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..t {
                matrix[row * t + k] -= factor * matrix[col * t + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; t];
    for row in (0..t).rev() {
        let mut acc = rhs[row];
        for k in row + 1..t {
            acc -= matrix[row * t + k] * x[k];
        }
        x[row] = acc / matrix[row * t + row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_population::engine::{CountSim, Simulator};
    use avc_population::rngutil::SeedSequence;
    use avc_protocols::{Avc, FourState, Voter};

    fn simulate_mean<P: Protocol + Clone>(
        protocol: &P,
        a: u64,
        b: u64,
        rule: ConvergenceRule,
        trials: u64,
    ) -> f64 {
        let seeds = SeedSequence::new(99);
        let mut total = 0.0;
        for t in 0..trials {
            let mut rng = seeds.rng_for(t);
            let config = Config::from_input(protocol, a, b);
            let mut sim = CountSim::new(protocol.clone(), config);
            let out = sim.run_to_consensus_with(&mut rng, u64::MAX, rule);
            assert!(out.verdict.is_consensus());
            total += out.steps as f64;
        }
        total / trials as f64
    }

    #[test]
    fn voter_two_agents_is_a_coin_flip_chain() {
        // n = 2, one agent each: every step is productive (responder adopts
        // initiator) and reaches consensus immediately: E[T] = 1.
        let exact = expected_steps_to_convergence(
            &Voter,
            &Config::from_input(&Voter, 1, 1),
            ConvergenceRule::OutputConsensus,
            1_000,
        )
        .unwrap()
        .unwrap();
        assert!((exact - 1.0).abs() < 1e-9, "{exact}");
    }

    #[test]
    fn already_absorbed_has_zero_expectation() {
        let exact = expected_steps_to_convergence(
            &Voter,
            &Config::from_input(&Voter, 5, 0),
            ConvergenceRule::OutputConsensus,
            1_000,
        )
        .unwrap()
        .unwrap();
        assert_eq!(exact, 0.0);
    }

    #[test]
    fn exact_matches_simulation_for_voter() {
        let exact = expected_steps_to_convergence(
            &Voter,
            &Config::from_input(&Voter, 4, 3),
            ConvergenceRule::OutputConsensus,
            10_000,
        )
        .unwrap()
        .unwrap();
        let simulated = simulate_mean(&Voter, 4, 3, ConvergenceRule::OutputConsensus, 4_000);
        assert!(
            (exact - simulated).abs() / exact < 0.05,
            "exact {exact} vs simulated {simulated}"
        );
    }

    #[test]
    fn exact_matches_simulation_for_four_state() {
        let exact = expected_steps_to_convergence(
            &FourState,
            &Config::from_input(&FourState, 5, 3),
            ConvergenceRule::OutputConsensus,
            100_000,
        )
        .unwrap()
        .unwrap();
        let simulated = simulate_mean(&FourState, 5, 3, ConvergenceRule::OutputConsensus, 4_000);
        assert!(
            (exact - simulated).abs() / exact < 0.05,
            "exact {exact} vs simulated {simulated}"
        );
    }

    #[test]
    fn exact_matches_simulation_for_avc() {
        let avc = Avc::new(3, 1).expect("valid parameters");
        let exact = expected_steps_to_convergence(
            &avc,
            &Config::from_input(&avc, 4, 2),
            ConvergenceRule::OutputConsensus,
            500_000,
        )
        .unwrap()
        .unwrap();
        let simulated = simulate_mean(&avc, 4, 2, ConvergenceRule::OutputConsensus, 4_000);
        assert!(
            (exact - simulated).abs() / exact < 0.05,
            "exact {exact} vs simulated {simulated}"
        );
    }

    #[test]
    fn detects_infinite_expectation() {
        // Leader election with StateConsensus can never be unanimous when a
        // follower exists alongside the everlasting leader.
        use avc_protocols::LeaderElection;
        let result = expected_steps_to_convergence(
            &LeaderElection,
            &Config::from_counts(vec![2, 1]),
            ConvergenceRule::StateConsensus,
            10_000,
        )
        .unwrap();
        assert_eq!(result, None);
    }

    #[test]
    fn leader_election_exact_time_matches_formula() {
        // From ℓ leaders: E[steps] = Σ_{j=2}^{ℓ} n(n−1)/(j(j−1)).
        let n = 6u64;
        let exact = expected_steps_to_convergence(
            &avc_protocols::LeaderElection,
            &Config::from_counts(vec![n, 0]),
            ConvergenceRule::OutputCount {
                opinion: Opinion::A,
                count: 1,
            },
            10_000,
        )
        .unwrap()
        .unwrap();
        let formula: f64 = (2..=n)
            .map(|j| (n * (n - 1)) as f64 / ((j * (j - 1)) as f64))
            .sum();
        assert!((exact - formula).abs() < 1e-6, "{exact} vs {formula}");
    }
}
