//! Regression pins for batching engines at stopping boundaries.
//!
//! `JumpSim` advances in geometric silent-step batches and `TauLeapSim` in
//! Poisson leaps, so a *step budget* can legitimately be overshot by the
//! final batch: the budget is checked before each batch (exactly as the
//! per-step loop checks it before each `advance`), and the reported step
//! count is always the true chain position, never clamped back to the
//! budget. *Predicates*, by contrast, are exact on `JumpSim` — jumps land
//! precisely on productive steps, the only places counts change — while on
//! `TauLeapSim` they are observable only at leap boundaries (an engine
//! approximation predating the chunked driver, not introduced by it).
//!
//! These tests pin the exact reported step/event counts at those
//! boundaries for fixed seeds, so any change to batch bookkeeping, check
//! ordering, or RNG consumption shows up as a diff here. Every pin is also
//! cross-checked against the per-step reference loop
//! (`advance_upto_step_by_step`), which must report identical numbers.

use avc::population::engine::{
    advance_upto_step_by_step, ChunkedSimulator, JumpSim, Simulator, StopCondition, StopReason,
    TauLeapSim,
};
use avc::population::{Config, ConvergenceRule, Opinion};
use avc::protocols::FourState;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs the chunked path and the per-step reference path from the same
/// seed, asserts they agree, and returns (steps, events, reason, count_a).
fn pin<S: ChunkedSimulator>(
    make: impl Fn() -> S,
    seed: u64,
    stop: StopCondition,
) -> (u64, u64, StopReason, u64) {
    let mut chunked = make();
    let mut rng = SmallRng::seed_from_u64(seed);
    let report = chunked.advance_chunk(&mut rng, stop);

    let mut reference = make();
    let mut rng = SmallRng::seed_from_u64(seed);
    let ref_report = advance_upto_step_by_step(&mut reference, &mut rng, stop);

    assert_eq!(reference.steps(), chunked.steps(), "reference steps differ");
    assert_eq!(
        reference.events(),
        chunked.events(),
        "reference events differ"
    );
    assert_eq!(ref_report.reason, report.reason, "reference reason differs");
    assert_eq!(
        reference.count_a(),
        chunked.count_a(),
        "reference count_a differs"
    );
    (
        chunked.steps(),
        chunked.events(),
        report.reason,
        chunked.count_a(),
    )
}

#[test]
fn jump_overshoots_step_budget_by_its_final_batch() {
    let make = || JumpSim::new(FourState, Config::from_input(&FourState, 900, 100));
    for (budget, steps, events) in [(1_000u64, 1_025u64, 157u64), (2_000, 2_035, 201)] {
        let stop = StopCondition::never().with_max_steps(budget);
        let pinned = pin(make, 7, stop);
        assert_eq!(pinned, (steps, events, StopReason::StepBudget, pinned.3));
        assert!(
            steps > budget,
            "this seed/budget pair is chosen to exhibit overshoot"
        );
    }
}

#[test]
fn tau_leap_overshoots_step_budget_by_its_final_leap() {
    let make = || TauLeapSim::new(FourState, Config::from_input(&FourState, 900, 100));
    for (budget, steps, events) in [(1_000u64, 1_006u64, 124u64), (2_000, 2_017, 191)] {
        let stop = StopCondition::never().with_max_steps(budget);
        let pinned = pin(make, 7, stop);
        assert_eq!(pinned, (steps, events, StopReason::StepBudget, pinned.3));
        assert!(
            steps > budget,
            "this seed/budget pair is chosen to exhibit overshoot"
        );
    }
}

#[test]
fn jump_stops_exactly_where_an_output_count_predicate_first_holds() {
    // Jumps land exactly on productive steps, so the OutputCount predicate
    // stops the chunk at the precise step the count is first reached — no
    // overshoot, even though the engine batches silent steps.
    let make = || JumpSim::new(FourState, Config::from_input(&FourState, 60, 40));
    let stop = StopCondition::for_rule(
        ConvergenceRule::OutputCount {
            opinion: Opinion::B,
            count: 10,
        },
        100,
    );
    let (steps, events, reason, count_a) = pin(make, 3, stop);
    assert_eq!(
        (steps, events, reason, count_a),
        (672, 138, StopReason::Predicate, 90),
        "B-count predicate must fire at the exact productive step"
    );
}

#[test]
fn tau_leap_sees_predicates_at_leap_boundaries() {
    // τ-leaping applies whole leaps atomically: the predicate is evaluated
    // at leap boundaries only. These pins document that granularity (an
    // engine approximation, not a chunking artifact — the per-step
    // reference loop reports the same numbers, as `pin` asserts).
    let make = || TauLeapSim::new(FourState, Config::from_input(&FourState, 60, 40));

    let count_stop = StopCondition::for_rule(
        ConvergenceRule::OutputCount {
            opinion: Opinion::B,
            count: 20,
        },
        100,
    );
    assert_eq!(
        pin(make, 3, count_stop),
        (252, 78, StopReason::Predicate, 80)
    );

    let consensus_stop = StopCondition::for_rule(ConvergenceRule::OutputConsensus, 100);
    assert_eq!(
        pin(make, 3, consensus_stop),
        (2_030, 136, StopReason::Predicate, 100)
    );
}

#[test]
fn reported_steps_are_never_clamped_to_the_budget() {
    // Sweep many budgets: whenever a batching engine stops on StepBudget,
    // the reported position must be >= the budget (never clamped down),
    // and re-running with the final position as the budget must reproduce
    // it exactly (the chain is budget-monotone).
    let make = || JumpSim::new(FourState, Config::from_input(&FourState, 300, 100));
    for budget in (50..2_000).step_by(171) {
        let mut sim = make();
        let mut rng = SmallRng::seed_from_u64(11);
        let report = sim.advance_chunk(&mut rng, StopCondition::never().with_max_steps(budget));
        if report.reason == StopReason::StepBudget {
            assert!(sim.steps() >= budget, "budget {budget}: clamped steps");
            let mut replay = make();
            let mut rng = SmallRng::seed_from_u64(11);
            let _ =
                replay.advance_chunk(&mut rng, StopCondition::never().with_max_steps(sim.steps()));
            assert_eq!(replay.steps(), sim.steps(), "budget {budget}: not stable");
        }
    }
}
