//! Offline vendored subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking API.
//!
//! Provides the types and macros this workspace's benches use
//! ([`Criterion`], [`BenchmarkId`], `benchmark_group`/`bench_function`/
//! `bench_with_input`, [`criterion_group!`], [`criterion_main!`],
//! [`black_box`]) with a simple mean-of-samples timer instead of
//! criterion's full statistical machinery. Results print as
//! `<group>/<name>: <mean> per iter (n samples)`.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Parses command-line options (accepted and ignored: this vendored
    /// shim has no filtering or baselines).
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut body);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted and ignored).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, &mut body);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{id}", self.name);
        let mut bencher = Bencher::new(self.sample_size);
        body(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Ends the group (prints nothing; reports are per-benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An identifier `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.function),
            None => write!(f, "{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `body` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warm-up call, then timed samples.
        black_box(body());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label}: no samples (bencher.iter never called)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{label}: {mean:?} per iter ({} samples)",
            self.samples.len()
        );
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, body: &mut F) {
    let mut bencher = Bencher::new(sample_size);
    body(&mut bencher);
    bencher.report(label);
}

/// Bundles benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("count_calls", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("jump", 101).to_string(), "jump/101");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
