//! The parallel trial harness's central guarantee: a [`TrialPlan`] produces
//! **bit-identical** per-trial outcomes and aggregate [`Summary`] statistics
//! under every [`Parallelism`] setting. Trial `i` always consumes seed
//! stream `i`, workers only affect scheduling, and `Summary::merge` is an
//! exact monoid — so `Serial`, `Threads(2)` and `Threads(8)` must agree to
//! the last bit.

use avc::analysis::harness::{run_trials, EngineKind, Parallelism, TrialPlan};
use avc::analysis::stats::Summary;
use avc::population::{ConvergenceRule, MajorityInstance};
use avc::protocols::{Avc, ThreeState};
use proptest::prelude::*;

/// Bit-level `Summary` equality: `to_bits` on every statistic and every
/// retained sample, so even −0.0 vs 0.0 or differently-rounded means fail.
fn bits_equal(a: &Summary, b: &Summary) -> bool {
    a.count == b.count
        && a.mean.to_bits() == b.mean.to_bits()
        && a.std_dev.to_bits() == b.std_dev.to_bits()
        && a.min.to_bits() == b.min.to_bits()
        && a.max.to_bits() == b.max.to_bits()
        && a.median.to_bits() == b.median.to_bits()
        && a.samples().len() == b.samples().len()
        && a.samples()
            .iter()
            .zip(b.samples())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Serial vs `Threads(2)` vs `Threads(8)`: identical outcome vectors and
/// bit-identical summaries for AVC, across several master seeds.
#[test]
fn avc_trials_are_parallelism_invariant() {
    let avc = Avc::new(9, 1).expect("valid parameters");
    for seed in [0u64, 17, 4_242] {
        let base = TrialPlan::new(MajorityInstance::new(40, 31))
            .runs(20)
            .seed(seed);
        let serial = run_trials(
            &avc,
            &base.parallelism(Parallelism::Serial),
            EngineKind::Auto,
            ConvergenceRule::OutputConsensus,
        );
        for workers in [2usize, 8] {
            let sharded = run_trials(
                &avc,
                &base.parallelism(Parallelism::Threads(workers)),
                EngineKind::Auto,
                ConvergenceRule::OutputConsensus,
            );
            assert_eq!(
                serial.outcomes(),
                sharded.outcomes(),
                "seed {seed}, {workers} workers"
            );
            assert!(
                bits_equal(&serial.summary(), &sharded.summary()),
                "seed {seed}, {workers} workers: {:?} vs {:?}",
                serial.summary(),
                sharded.summary()
            );
        }
    }
}

/// The same invariance for the three-state protocol under state consensus.
#[test]
fn three_state_trials_are_parallelism_invariant() {
    for seed in [3u64, 99] {
        let base = TrialPlan::new(MajorityInstance::new(50, 30))
            .runs(24)
            .seed(seed);
        let serial = run_trials(
            &ThreeState::new(),
            &base.parallelism(Parallelism::Serial),
            EngineKind::Count,
            ConvergenceRule::StateConsensus,
        );
        for workers in [2usize, 8] {
            let sharded = run_trials(
                &ThreeState::new(),
                &base.parallelism(Parallelism::Threads(workers)),
                EngineKind::Count,
                ConvergenceRule::StateConsensus,
            );
            assert_eq!(serial.outcomes(), sharded.outcomes(), "seed {seed}");
            assert!(
                bits_equal(&serial.summary(), &sharded.summary()),
                "seed {seed}"
            );
            assert_eq!(serial.error_fraction(), sharded.error_fraction());
            assert_eq!(
                serial.convergence_fraction(),
                sharded.convergence_fraction()
            );
        }
    }
}

/// `Auto` is just a worker count — it too matches serial exactly.
#[test]
fn auto_parallelism_matches_serial() {
    let plan = TrialPlan::new(MajorityInstance::one_extra(31))
        .runs(16)
        .seed(8);
    let serial = run_trials(
        &ThreeState::new(),
        &plan.parallelism(Parallelism::Serial),
        EngineKind::Auto,
        ConvergenceRule::StateConsensus,
    );
    let auto = run_trials(
        &ThreeState::new(),
        &plan.parallelism(Parallelism::Auto),
        EngineKind::Auto,
        ConvergenceRule::StateConsensus,
    );
    assert_eq!(serial.outcomes(), auto.outcomes());
    assert!(bits_equal(&serial.summary(), &auto.summary()));
}

/// Strategy for a small f64 sample with finite values, including negatives
/// and zeros (the −0.0/0.0 corner is covered by dedicated unit tests in
/// `stats.rs`; total-order sorting makes it a non-issue here).
fn sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6f64..1.0e6, 0..24)
}

fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        Summary::empty()
    } else {
        Summary::from_samples(samples)
    }
}

proptest! {
    /// `Summary::merge` is associative down to the bit.
    #[test]
    fn merge_is_associative(a in sample(), b in sample(), c in sample()) {
        let (a, b, c) = (summarize(&a), summarize(&b), summarize(&c));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        prop_assert!(bits_equal(&left, &right), "{left:?} vs {right:?}");
    }

    /// Merging shards in any order reproduces the whole-sample summary: the
    /// exact property the parallel harness relies on.
    #[test]
    fn merge_is_order_independent(a in sample(), b in sample(), c in sample()) {
        let whole: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        let expected = summarize(&whole);
        let (a, b, c) = (summarize(&a), summarize(&b), summarize(&c));
        for merged in [
            a.merge(&b).merge(&c),
            a.merge(&c).merge(&b),
            b.merge(&a).merge(&c),
            b.merge(&c).merge(&a),
            c.merge(&a).merge(&b),
            c.merge(&b).merge(&a),
        ] {
            prop_assert!(
                bits_equal(&expected, &merged),
                "{expected:?} vs {merged:?}"
            );
        }
    }

    /// `Summary::empty` is a two-sided identity for any sample.
    #[test]
    fn merge_has_empty_identity(a in sample()) {
        let s = summarize(&a);
        prop_assert!(bits_equal(&Summary::empty().merge(&s), &s));
        prop_assert!(bits_equal(&s.merge(&Summary::empty()), &s));
    }
}
