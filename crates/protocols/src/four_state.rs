//! The four-state exact-majority protocol [DV12, MNRS14].

use avc_population::{Opinion, Protocol, StateId};
use std::fmt;

/// A state of the four-state protocol: a sign and a strong/weak flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FourStateState {
    /// `+1` — strong opinion `A`.
    StrongA,
    /// `−1` — strong opinion `B`.
    StrongB,
    /// `+0` — weak opinion `A`.
    WeakA,
    /// `−0` — weak opinion `B`.
    WeakB,
}

impl fmt::Display for FourStateState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FourStateState::StrongA => write!(f, "+1"),
            FourStateState::StrongB => write!(f, "-1"),
            FourStateState::WeakA => write!(f, "+0"),
            FourStateState::WeakB => write!(f, "-0"),
        }
    }
}

/// The four-state exact-majority protocol of Draief–Vojnović (binary
/// interval consensus) and Mertzios–Nikoletseas–Raptopoulos–Spirakis.
///
/// Agents hold a sign and a weight in `{0, 1}`:
///
/// * `(+1, −1) → (+0, −0)` — opposite strong states neutralize;
/// * a weak state adopts the sign of a strong interaction partner;
/// * everything else is silent.
///
/// The protocol solves majority *exactly* (the invariant `#(+1) − #(−1)` is
/// preserved, so the minority's strong states deplete first) in expected
/// `O(log n / ε)` parallel time on the clique — polynomial in `n` for small
/// margins, which is the slowness AVC removes. It coincides with
/// [`Avc`](crate::Avc) at `m = 1, d = 1` (tested in `avc.rs`).
///
/// # Example
///
/// ```
/// use avc_population::engine::{JumpSim, Simulator};
/// use avc_population::{Config, Opinion};
/// use avc_protocols::FourState;
/// use rand::SeedableRng;
///
/// let config = Config::from_input(&FourState, 51, 50);
/// let mut sim = JumpSim::new(FourState, config);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
/// let out = sim.run_to_consensus(&mut rng, u64::MAX);
/// assert_eq!(out.verdict.opinion(), Some(Opinion::A)); // exact, always
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FourState;

const STRONG_A: StateId = 0;
const STRONG_B: StateId = 1;
const WEAK_A: StateId = 2;
const WEAK_B: StateId = 3;

impl FourState {
    /// The strong state carrying `opinion`.
    #[must_use]
    pub fn encode_strong(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => STRONG_A,
            Opinion::B => STRONG_B,
        }
    }

    /// The weak state carrying `opinion`.
    #[must_use]
    pub fn encode_weak(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => WEAK_A,
            Opinion::B => WEAK_B,
        }
    }

    /// Decodes a state index.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn decode(&self, state: StateId) -> FourStateState {
        match state {
            STRONG_A => FourStateState::StrongA,
            STRONG_B => FourStateState::StrongB,
            WEAK_A => FourStateState::WeakA,
            WEAK_B => FourStateState::WeakB,
            other => panic!("state id {other} out of range for FourState"),
        }
    }

    /// Whether a state is strong (weight 1).
    #[must_use]
    pub fn is_strong(&self, state: StateId) -> bool {
        state == STRONG_A || state == STRONG_B
    }

    /// The signed "value" of a state: `+1`, `−1`, or `0`; the quantity whose
    /// population sum the protocol preserves.
    #[must_use]
    pub fn value_of(&self, state: StateId) -> i64 {
        match state {
            STRONG_A => 1,
            STRONG_B => -1,
            _ => 0,
        }
    }
}

impl Protocol for FourState {
    fn num_states(&self) -> u32 {
        4
    }

    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        match (initiator, responder) {
            // Opposite strong states neutralize into weak states.
            (STRONG_A, STRONG_B) => (WEAK_A, WEAK_B),
            (STRONG_B, STRONG_A) => (WEAK_B, WEAK_A),
            // A strong state meeting a weak state converts it to its own
            // sign *and hops onto its vertex* (the token swap of [DV12]).
            // On a clique the swap is invisible — the state multiset is the
            // same either way — but on general graphs it makes the strong
            // tokens perform random walks, without which low-conductance
            // topologies (e.g. the star) can deadlock short of consensus.
            (STRONG_A, WEAK_A | WEAK_B) => (WEAK_A, STRONG_A),
            (WEAK_A | WEAK_B, STRONG_A) => (STRONG_A, WEAK_A),
            (STRONG_B, WEAK_A | WEAK_B) => (WEAK_B, STRONG_B),
            (WEAK_A | WEAK_B, STRONG_B) => (STRONG_B, WEAK_B),
            // Same-sign strong and weak–weak interactions are silent.
            other => other,
        }
    }

    fn output(&self, state: StateId) -> Opinion {
        match state {
            STRONG_A | WEAK_A => Opinion::A,
            _ => Opinion::B,
        }
    }

    fn input(&self, opinion: Opinion) -> StateId {
        self.encode_strong(opinion)
    }

    fn state_label(&self, state: StateId) -> String {
        self.decode(state).to_string()
    }

    fn name(&self) -> &str {
        "four-state"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_population::engine::{AgentSim, Simulator};
    use avc_population::Config;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn neutralization_and_adoption() {
        let p = FourState;
        assert_eq!(p.transition(STRONG_A, STRONG_B), (WEAK_A, WEAK_B));
        assert_eq!(p.transition(STRONG_B, STRONG_A), (WEAK_B, WEAK_A));
        // Adoption includes the DV12 token swap: the strong state ends up
        // on the former weak node's side.
        assert_eq!(p.transition(STRONG_A, WEAK_B), (WEAK_A, STRONG_A));
        assert_eq!(p.transition(WEAK_A, STRONG_B), (STRONG_B, WEAK_B));
    }

    #[test]
    fn adoption_preserves_the_state_multiset_seen_on_cliques() {
        // {+1, −0} → {+1, +0} regardless of which side holds the token.
        let p = FourState;
        let mut out: Vec<StateId> = {
            let (x, y) = p.transition(STRONG_A, WEAK_B);
            vec![x, y]
        };
        out.sort_unstable();
        assert_eq!(out, vec![STRONG_A, WEAK_A]);
    }

    #[test]
    fn star_topology_reaches_consensus_thanks_to_token_swap() {
        // Without the swap, strong tokens freeze at their vertices and the
        // star deadlocks with unconverted leaves. With it, consensus is
        // reached from every seed.
        use avc_population::graph::Graph;
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..5 {
            let config = Config::from_input(&FourState, 14, 7);
            let mut sim = AgentSim::new(FourState, config, Graph::star(21));
            let out = sim.run_to_consensus(&mut rng, 50_000_000);
            assert_eq!(out.verdict.opinion(), Some(Opinion::A));
        }
    }

    #[test]
    fn silent_pairs() {
        let p = FourState;
        for (a, b) in [
            (STRONG_A, STRONG_A),
            (STRONG_B, STRONG_B),
            (WEAK_A, WEAK_A),
            (WEAK_A, WEAK_B),
            (WEAK_B, WEAK_B),
            (STRONG_A, WEAK_A),
            (STRONG_B, WEAK_B),
        ] {
            assert!(p.is_silent(a, b), "({a},{b}) should be silent");
            assert!(p.is_silent(b, a));
        }
    }

    #[test]
    fn value_sum_is_invariant() {
        let p = FourState;
        for a in 0..4 {
            for b in 0..4 {
                let (x, y) = p.transition(a, b);
                assert_eq!(p.value_of(a) + p.value_of(b), p.value_of(x) + p.value_of(y));
            }
        }
    }

    #[test]
    fn exactness_on_small_population() {
        // With a one-agent advantage for B, the protocol must always output B.
        let mut rng = SmallRng::seed_from_u64(7);
        for trial in 0..50 {
            let config = Config::from_input(&FourState, 5, 6);
            let mut sim = AgentSim::on_clique(FourState, config);
            let out = sim.run_to_consensus(&mut rng, 10_000_000);
            assert_eq!(
                out.verdict.opinion(),
                Some(Opinion::B),
                "erred on trial {trial}"
            );
        }
    }

    #[test]
    fn labels_and_codec() {
        let p = FourState;
        assert_eq!(p.state_label(STRONG_A), "+1");
        assert_eq!(p.state_label(WEAK_B), "-0");
        assert_eq!(p.encode_strong(Opinion::B), STRONG_B);
        assert_eq!(p.encode_weak(Opinion::A), WEAK_A);
        assert!(p.is_strong(STRONG_B));
        assert!(!p.is_strong(WEAK_B));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_out_of_range() {
        let _ = FourState.decode(4);
    }
}
