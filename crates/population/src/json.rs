//! A minimal JSON value type with writer and parser.
//!
//! Scenario specs and the store's records are plain JSON so they stay
//! greppable and tool-friendly, but the workspace is vendored-offline with
//! no serde; this module implements exactly the subset needed — objects,
//! arrays, strings, integer numbers, and booleans. Floats are *never*
//! serialized as JSON numbers: exact `f64` round-tripping matters for
//! byte-identical resumes, so callers store them as strings (decimal via
//! `format!("{value}")` for scenario files, or hex bit-pattern strings in
//! the store's records).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use [`BTreeMap`] so serialization is canonical
/// (sorted keys), which the manifest hash relies on.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Only integer-valued numbers are ever produced by this
    /// workspace; the parser accepts any JSON number into an `i64` when
    /// lossless, else a float (accepted but not canonical).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with canonically sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// A field of an object, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serializes to a compact single-line string (no whitespace), with
    /// object keys in sorted order — the canonical form used both on disk
    /// and as the manifest-hash preimage.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation (for `avc show`).
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error (with byte offset),
    /// or of trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    text.parse::<i64>()
        .map(Json::Int)
        .map_err(|_| format!("unsupported number `{text}` at byte {start} (only integers)"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape at byte {pos}")),
                }
            }
            _ => {
                // Collect the full UTF-8 sequence starting at b.
                let width = match b {
                    0x00..=0x7f => {
                        out.push(b as char);
                        continue;
                    }
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let start = *pos - 1;
                let end = start + width;
                let chunk = bytes
                    .get(start..end)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::obj([
            ("b", Json::Int(-3)),
            ("a", Json::str("hi \"there\"\n")),
            (
                "list",
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::str("x")]),
            ),
            ("empty", Json::obj(Vec::<(String, Json)>::new())),
        ]);
        let text = doc.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Keys serialize sorted regardless of insertion order.
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    fn pretty_printing_is_reparseable() {
        let doc = Json::obj([("k", Json::Arr(vec![Json::Int(1), Json::Int(2)]))]);
        assert_eq!(Json::parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn rejects_float_numbers() {
        // Floats travel as hex bit strings, never JSON numbers.
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("[3]").is_ok());
    }

    #[test]
    fn escapes_control_characters() {
        let doc = Json::str("tab\tnul\u{1}");
        let text = doc.to_string_compact();
        assert!(text.contains("\\t"));
        assert!(text.contains("\\u0001"));
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn preserves_unicode() {
        let doc = Json::str("ε ≈ 10⁻⁵");
        assert_eq!(Json::parse(&doc.to_string_compact()).unwrap(), doc);
    }
}
