//! The sweep engine: checkpointed execution of a cell grid plus export.
//!
//! A [`Plan`] enumerates an experiment's cells (each with a [`Manifest`]
//! identity and a closure that computes its [`CellResult`]) and knows how to
//! assemble the final tables from the full, ordered result list. Running a
//! plan consults the [`Store`] before every cell: completed cells are
//! skipped, missing ones run and are appended durably *before* the next
//! cell starts. Killing the process at any point therefore loses at most
//! the in-flight cell, and a rerun of the same command resumes there —
//! cells are seeded independently of each other and of the `Parallelism`
//! setting, so the resumed sweep's export is byte-identical to an
//! uninterrupted run's.
//!
//! Cell closures are clients of the chunked run driver
//! (`avc_population::driver::Driver`) via the analysis harness: per-trial
//! stepping is monomorphized inside each engine, and checkpoints see only
//! the driver's `RunOutcome`s, which are chunking-invariant — the resume
//! byte-identity above is unaffected by how the driver slices a run.

use crate::manifest::Manifest;
use crate::record::{CellResult, Record};
use crate::store::Store;
use avc_analysis::harness::StatsCollector;
use avc_analysis::table::Table;
use avc_population::telemetry::export::JsonlWriter;
use avc_population::telemetry::{wall_suppressed, RegistrySnapshot, Span};
use std::fmt;
use std::io;

/// A deterministic 1-of-k slice of a sweep's cell grid (`--shard i/k`).
///
/// Ownership hashes each cell's content-addressed [`Manifest::hash`]: cell
/// `h` belongs to shard `i` iff `u64(h[..16]) % k == i`. The partition is a
/// pure function of cell identity — independent of grid order, flags that
/// don't enter the manifest, and which shards ran before — so k invocations
/// with `--shard 0/k .. k-1/k` cover every cell exactly once and
/// [`merge`] can reassemble them into an unsharded store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    index: u64,
    count: u64,
}

impl Shard {
    /// The trivial shard owning every cell (an unsharded sweep).
    #[must_use]
    pub fn full() -> Shard {
        Shard { index: 0, count: 1 }
    }

    /// A shard `index` of `count`.
    ///
    /// # Errors
    ///
    /// Rejects `count == 0` and `index >= count`.
    pub fn new(index: u64, count: u64) -> Result<Shard, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shard(s)"
            ));
        }
        Ok(Shard { index, count })
    }

    /// Parses the CLI form `i/k`.
    ///
    /// # Errors
    ///
    /// Describes the malformed input.
    pub fn parse(text: &str) -> Result<Shard, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("shard `{text}` is not of the form i/k"))?;
        let parse = |s: &str| {
            s.parse::<u64>()
                .map_err(|_| format!("shard `{text}` is not of the form i/k"))
        };
        Shard::new(parse(index)?, parse(count)?)
    }

    /// Whether this is the trivial full shard.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// Whether this shard owns the cell with the given manifest hash.
    ///
    /// # Panics
    ///
    /// Panics if `hash` is shorter than 16 hex characters (manifest hashes
    /// are 64).
    #[must_use]
    pub fn owns(&self, hash: &str) -> bool {
        let prefix = u64::from_str_radix(&hash[..16], 16).expect("manifest hashes are hex");
        prefix % self.count == self.index
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One runnable cell of a sweep.
pub struct Cell {
    /// The cell's content-addressed identity.
    pub manifest: Manifest,
    /// Short human label (also stored in the manifest under `cell`).
    pub label: String,
    /// Computes the cell. Must depend only on the manifest's parameters.
    pub run: Box<dyn Fn(&StatsCollector) -> CellResult>,
}

/// Everything `avc export` produces for a sweep.
pub struct Export {
    /// `(file_stem, table)` pairs to write as `<out>/<stem>.csv`.
    pub tables: Vec<(String, Table)>,
    /// Extra stdout lines (terminal plots, fitted slopes, check verdicts).
    pub trailer: Vec<String>,
}

/// A fully-specified sweep: cells plus the export assembly.
pub struct Plan {
    /// Sweep spec name (`fig3`, …).
    pub name: String,
    /// One-line banner description.
    pub banner: String,
    /// Cells in deterministic grid order.
    pub cells: Vec<Cell>,
    /// Assembles the export from results ordered as [`Plan::cells`].
    #[allow(clippy::type_complexity)]
    pub export: Box<dyn Fn(&[&CellResult]) -> Export>,
}

/// What [`run`] did for each cell class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepOutcome {
    /// Cells found complete in the store and skipped.
    pub cached: usize,
    /// Cells executed this invocation.
    pub ran: usize,
    /// Cells owned by other shards and not touched (`0` unsharded).
    pub foreign: usize,
}

/// Runs every missing cell of `plan`, checkpointing each into `store` as it
/// completes. Progress lines go to stderr when `verbose`. Equivalent to
/// [`run_sharded`] with [`Shard::full`].
///
/// # Errors
///
/// Propagates I/O errors from the store append; the sweep stops at the
/// first failed append (completed cells stay durable).
pub fn run(
    store: &mut Store,
    plan: &Plan,
    stats: &StatsCollector,
    verbose: bool,
) -> io::Result<SweepOutcome> {
    run_sharded(store, plan, stats, verbose, Shard::full())
}

/// As [`run`], but executing only the cells `shard` owns — the parallel
/// half of the shard/merge protocol (`avc sweep --shard i/k`, then
/// [`merge`]).
///
/// Cells are seeded by identity, not position, so a shard's cells run with
/// exactly the RNG streams they consume in an unsharded sweep. With
/// [`wall_suppressed`] set, checkpoints carry no wall-clock bytes at all
/// (`wall_ms` recorded as 0, the telemetry `wall` registry stripped), which
/// makes each shard store — and therefore the merged store — a pure
/// function of the plan and seed: byte-identical to an unsharded run's.
///
/// # Errors
///
/// As [`run`].
pub fn run_sharded(
    store: &mut Store,
    plan: &Plan,
    stats: &StatsCollector,
    verbose: bool,
    shard: Shard,
) -> io::Result<SweepOutcome> {
    let mut outcome = SweepOutcome::default();
    let total = plan.cells.len();
    // Per-cell telemetry journal beside the records file. Opening tolerates
    // a torn final line (the crash signature), so a resumed sweep appends
    // cleanly after a kill.
    let mut journal = JsonlWriter::open(&telemetry_path(store))?;
    // Journal lines of sharded runs carry their shard as provenance, so
    // `avc report` can attribute wall time and throughput per shard.
    let shard_field = if shard.is_full() {
        String::new()
    } else {
        format!("\"shard\":\"{shard}\",")
    };
    for (i, cell) in plan.cells.iter().enumerate() {
        let hash = cell.manifest.hash();
        if !shard.owns(&hash) {
            outcome.foreign += 1;
            continue;
        }
        if store.get(&hash).is_some() {
            outcome.cached += 1;
            if verbose {
                eprintln!(
                    "[cell {}/{total}] {} — cached ({})",
                    i + 1,
                    cell.label,
                    &hash[..12]
                );
            }
            continue;
        }
        let started = Span::start();
        let mut result = (cell.run)(stats);
        let wall_ms = if wall_suppressed() {
            0
        } else {
            started.elapsed_ms()
        };
        if wall_suppressed() {
            if let Some(telemetry) = &mut result.telemetry {
                telemetry.wall = RegistrySnapshot::new();
            }
        }
        if let Some(telemetry) = &result.telemetry {
            journal.append(&format!(
                "{{\"hash\":\"{hash}\",\"cell\":\"{}\",{shard_field}\"telemetry\":{}}}",
                avc_population::telemetry::export::json_escape(&cell.label),
                telemetry.to_json()
            ))?;
        }
        store.append(Record::new(cell.manifest.clone(), result, wall_ms))?;
        outcome.ran += 1;
        if verbose {
            eprintln!(
                "[cell {}/{total}] {} — ran in {:.1}s ({})",
                i + 1,
                cell.label,
                wall_ms as f64 / 1e3,
                &hash[..12]
            );
        }
    }
    Ok(outcome)
}

/// Folds shard stores back into one store laid out exactly like an
/// unsharded sweep's: for each plan cell **in grid order**, the cell's
/// record is looked up across `sources` (first hit wins — a deterministic
/// sweep writes identical records wherever the cell ran) and appended to
/// `dest`. Since the unsharded runner also appends in grid order, a merge
/// of k complete shard stores produced under [`wall_suppressed`] yields a
/// `records.jsonl` byte-identical to the unsharded run's. Cells already in
/// `dest` are left untouched; the telemetry journals are merged the same
/// way (journal lines keep their shard provenance, so the merged journal is
/// shard-annotated rather than byte-identical).
///
/// Returns how many records were appended.
///
/// # Errors
///
/// Lists cells missing from every source (some shard has not finished),
/// and propagates store/journal I/O failures as strings.
pub fn merge(dest: &mut Store, plan: &Plan, sources: &[Store]) -> Result<usize, String> {
    let mut missing = Vec::new();
    let mut appended = 0usize;
    let source_journals: Vec<Vec<String>> = sources
        .iter()
        .map(|s| {
            avc_population::telemetry::export::read_lines_tolerant(&telemetry_path(s))
                .map_err(|e| e.to_string())
        })
        .collect::<Result<_, String>>()?;
    let mut journal = JsonlWriter::open(&telemetry_path(dest)).map_err(|e| e.to_string())?;
    for cell in &plan.cells {
        let hash = cell.manifest.hash();
        if dest.get(&hash).is_some() {
            continue;
        }
        let Some(record) = sources.iter().find_map(|s| s.get(&hash)) else {
            missing.push(format!("  {} ({})", cell.label, &hash[..12]));
            continue;
        };
        dest.append(record.clone()).map_err(|e| e.to_string())?;
        // Carry the cell's journal line over (hash-keyed, plan-ordered).
        let needle = format!("\"hash\":\"{hash}\"");
        if let Some(line) = source_journals
            .iter()
            .flatten()
            .find(|line| line.contains(&needle))
        {
            journal.append(line).map_err(|e| e.to_string())?;
        }
        appended += 1;
    }
    if missing.is_empty() {
        Ok(appended)
    } else {
        Err(format!(
            "{} of {} cells missing from every shard store — run the remaining shards of \
             `avc sweep {}` first:\n{}",
            missing.len(),
            plan.cells.len(),
            plan.name,
            missing.join("\n")
        ))
    }
}

/// The sweep telemetry journal's path: `telemetry.jsonl` beside the
/// registry's `records.jsonl`. One line per cell *executed* (cached cells
/// re-run nothing, so they journal nothing), in execution order.
#[must_use]
pub fn telemetry_path(store: &Store) -> std::path::PathBuf {
    store.dir().join("telemetry.jsonl")
}

/// Collects the ordered results for `plan` from the store.
///
/// # Errors
///
/// Returns the labels and hashes of missing cells (the `avc export`
/// error message).
pub fn collect<'s>(store: &'s Store, plan: &Plan) -> Result<Vec<&'s CellResult>, String> {
    let mut results = Vec::with_capacity(plan.cells.len());
    let mut missing = Vec::new();
    for cell in &plan.cells {
        match store.get(&cell.manifest.hash()) {
            Some(record) => results.push(&record.result),
            None => missing.push(format!(
                "  {} ({})",
                cell.label,
                &cell.manifest.hash()[..12]
            )),
        }
    }
    if missing.is_empty() {
        Ok(results)
    } else {
        Err(format!(
            "{} of {} cells missing from the store — run `avc sweep {}` first:\n{}",
            missing.len(),
            plan.cells.len(),
            plan.name,
            missing.join("\n")
        ))
    }
}

/// Builds the export for `plan` from the store.
///
/// # Errors
///
/// As [`collect`].
pub fn export(store: &Store, plan: &Plan) -> Result<Export, String> {
    let results = collect(store, plan)?;
    Ok((plan.export)(&results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell as StdCell;
    use std::rc::Rc;

    fn counting_plan(counter: Rc<StdCell<u32>>) -> Plan {
        let cells = (0..3u64)
            .map(|i| {
                let counter = counter.clone();
                Cell {
                    manifest: Manifest::new("demo", [("i", i.to_string())]),
                    label: format!("i={i}"),
                    run: Box::new(move |_| {
                        counter.set(counter.get() + 1);
                        CellResult {
                            notes: vec![format!("cell {i}")],
                            ..CellResult::default()
                        }
                    }),
                }
            })
            .collect();
        Plan {
            name: "demo".to_string(),
            banner: "demo sweep".to_string(),
            cells,
            export: Box::new(|results| {
                let mut t = Table::new("demo", ["note"]);
                for r in results {
                    t.push_row([r.notes[0].clone()]);
                }
                Export {
                    tables: vec![("demo".to_string(), t)],
                    trailer: vec![],
                }
            }),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("avc-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_run_is_fully_cached() {
        let dir = temp_dir("cached");
        let counter = Rc::new(StdCell::new(0));
        let plan = counting_plan(counter.clone());
        let stats = StatsCollector::new();

        let mut store = Store::open(&dir).unwrap();
        let first = run(&mut store, &plan, &stats, false).unwrap();
        assert_eq!((first.ran, first.cached), (3, 0));
        assert_eq!(counter.get(), 3);

        // Fresh open, same plan: everything cached, closures never invoked.
        let mut store = Store::open(&dir).unwrap();
        let second = run(&mut store, &plan, &stats, false).unwrap();
        assert_eq!((second.ran, second.cached), (0, 3));
        assert_eq!(counter.get(), 3);

        let exported = export(&store, &plan).unwrap();
        assert_eq!(exported.tables[0].1.num_rows(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_store_resumes_only_missing_cells() {
        let dir = temp_dir("partial");
        let counter = Rc::new(StdCell::new(0));
        let plan = counting_plan(counter.clone());
        let stats = StatsCollector::new();

        // Simulate an interrupted sweep: only cell 0 durable.
        {
            let mut store = Store::open(&dir).unwrap();
            let first_cell = &plan.cells[0];
            let result = (first_cell.run)(&stats);
            store
                .append(Record::new(first_cell.manifest.clone(), result, 1))
                .unwrap();
        }
        assert_eq!(counter.get(), 1);

        let mut store = Store::open(&dir).unwrap();
        assert!(export(&store, &plan)
            .map(|_| ())
            .unwrap_err()
            .contains("2 of 3"));
        let outcome = run(&mut store, &plan, &stats, false).unwrap();
        assert_eq!((outcome.ran, outcome.cached), (2, 1));
        assert_eq!(counter.get(), 3);
        assert!(export(&store, &plan).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
