//! Golden-trace regression tests: tiny fixed-seed [`CountSim`] runs with
//! checked-in expected count trajectories for all eight protocols plus the
//! parallel composition. Any edit
//! that changes a transition function, the pair sampler, or the RNG stream
//! shifts these traces and fails loudly.
//!
//! To regenerate after an *intentional* semantic change:
//! `cargo test --test golden_traces -- --ignored --nocapture` and paste the
//! printed blocks over the `EXPECTED_*` constants.

use avc::population::engine::{CountSim, Simulator};
use avc::population::rngutil::SeedSequence;
use avc::population::{Config, Protocol};
use avc::protocols::compose::{Lead, Parallel};
use avc::protocols::{Avc, Bef, Degssu, Epidemic, FourState, LeaderElection, ThreeState, Voter};

/// Runs `protocol` from `(a, b)` on [`CountSim`] with trial stream 0 of
/// `SeedSequence::new(seed)` and records `steps counts` every `stride`
/// advances (plus the initial configuration), stopping early if the
/// configuration goes silent.
fn trace<P: Protocol + Clone>(
    protocol: &P,
    a: u64,
    b: u64,
    seed: u64,
    advances: u64,
    stride: u64,
) -> String {
    let mut rng = SeedSequence::new(seed).rng_for(0);
    let config = Config::from_input(protocol, a, b);
    let mut sim = CountSim::new(protocol.clone(), config);
    let mut lines = vec![format!("{} {:?}", sim.steps(), sim.counts())];
    for k in 1..=advances {
        if sim.advance(&mut rng) == 0 {
            lines.push(format!("silent at {}", sim.steps()));
            break;
        }
        if k % stride == 0 {
            lines.push(format!("{} {:?}", sim.steps(), sim.counts()));
        }
    }
    lines.join("\n")
}

const EXPECTED_VOTER: &str = "\
0 [9, 6]
6 [11, 4]
12 [10, 5]
18 [12, 3]
24 [13, 2]
30 [15, 0]";

const EXPECTED_FOUR_STATE: &str = "\
0 [9, 6, 0, 0]
6 [8, 5, 0, 2]
12 [8, 5, 1, 1]
18 [5, 2, 5, 3]
24 [5, 2, 5, 3]
30 [4, 1, 5, 5]";

const EXPECTED_THREE_STATE: &str = "\
0 [9, 6, 0]
6 [8, 5, 2]
12 [7, 4, 4]
18 [8, 3, 4]
24 [7, 2, 6]
30 [8, 1, 6]";

const EXPECTED_LEADER_ELECTION: &str = "\
0 [15, 0]
6 [9, 6]
12 [8, 7]
18 [6, 9]
24 [5, 10]
30 [4, 11]
36 [4, 11]
42 [3, 12]
48 [3, 12]
54 [2, 13]
60 [2, 13]";

const EXPECTED_EPIDEMIC: &str = "\
0 [3, 12]
6 [4, 11]
12 [4, 11]
18 [5, 10]
24 [9, 6]
30 [9, 6]
36 [10, 5]
42 [11, 4]
48 [12, 3]
54 [14, 1]
60 [14, 1]";

const EXPECTED_AVC: &str = "\
0 [6, 0, 0, 0, 0, 0, 0, 9]
6 [4, 0, 1, 0, 2, 1, 0, 7]
12 [2, 0, 3, 1, 1, 2, 2, 4]
18 [0, 1, 5, 1, 1, 1, 4, 2]
24 [0, 0, 4, 3, 1, 2, 4, 1]
30 [0, 0, 4, 4, 0, 2, 4, 1]";

const EXPECTED_COMPOSE: &str = "\
0 [9, 0, 0, 6, 0, 0, 0, 0]
6 [8, 0, 0, 5, 1, 0, 0, 1]
12 [7, 0, 0, 4, 3, 0, 1, 0]
18 [6, 0, 1, 2, 3, 0, 3, 0]
24 [4, 0, 0, 1, 6, 0, 4, 0]
30 [4, 0, 0, 1, 6, 0, 4, 0]";

const EXPECTED_BEF: &str = "\
0 [0, 0, 9, 0, 0, 0, 6, 0, 0, 0]
6 [1, 2, 6, 2, 0, 0, 4, 0, 0, 0]
12 [2, 2, 5, 2, 0, 0, 2, 2, 0, 0]
18 [1, 1, 4, 2, 2, 0, 1, 2, 2, 0]
24 [1, 1, 2, 6, 1, 0, 1, 2, 1, 0]
30 [1, 2, 1, 7, 1, 0, 1, 1, 1, 0]
36 [1, 1, 1, 6, 3, 0, 1, 1, 1, 0]
42 [2, 0, 1, 6, 3, 0, 1, 1, 1, 0]
48 [1, 0, 1, 5, 5, 0, 1, 1, 1, 0]
54 [0, 0, 1, 5, 4, 2, 1, 1, 1, 0]
60 [1, 1, 2, 3, 2, 4, 1, 1, 0, 0]";

const EXPECTED_DEGSSU: &str = "\
0 [0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 6, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]
6 [3, 3, 6, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]
12 [4, 4, 2, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]
18 [4, 4, 1, 3, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]
24 [4, 4, 1, 2, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0]
30 [4, 4, 0, 1, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0]
36 [4, 4, 0, 1, 1, 1, 1, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0]
42 [3, 3, 0, 1, 0, 3, 1, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0]
48 [3, 4, 0, 0, 1, 2, 0, 1, 1, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0]
54 [3, 5, 0, 0, 0, 2, 2, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]
60 [2, 5, 0, 0, 0, 1, 2, 1, 2, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]";

/// The composite used by the composition golden trace: four-state majority
/// running in parallel with a one-way epidemic, outputs led by the
/// majority component. Packs as `first * |second| + second` (8 states).
fn composite() -> Parallel<FourState, Epidemic> {
    Parallel::new(FourState, Epidemic, Lead::First)
}

#[test]
fn voter_trace_is_stable() {
    assert_eq!(trace(&Voter, 9, 6, 101, 30, 6), EXPECTED_VOTER);
}

#[test]
fn four_state_trace_is_stable() {
    assert_eq!(trace(&FourState, 9, 6, 102, 30, 6), EXPECTED_FOUR_STATE);
}

#[test]
fn three_state_trace_is_stable() {
    assert_eq!(
        trace(&ThreeState::new(), 9, 6, 103, 30, 6),
        EXPECTED_THREE_STATE
    );
}

#[test]
fn avc_trace_is_stable() {
    let avc = Avc::new(5, 1).expect("valid parameters");
    assert_eq!(trace(&avc, 9, 6, 104, 30, 6), EXPECTED_AVC);
}

/// Leader election starts from the all-leaders configuration (every agent
/// maps from opinion A), so the trace pins the fratricide dynamics from the
/// worst case.
#[test]
fn leader_election_trace_is_stable() {
    assert_eq!(
        trace(&LeaderElection, 15, 0, 105, 60, 6),
        EXPECTED_LEADER_ELECTION
    );
}

/// One-way infection from three seeds; pins the one-sided (initiator-only)
/// transition orientation alongside the sampler stream.
#[test]
fn epidemic_trace_is_stable() {
    assert_eq!(trace(&Epidemic, 3, 12, 109, 60, 6), EXPECTED_EPIDEMIC);
}

/// Parallel composition `FourState × Epidemic`: pins the product packing
/// (`first · |second| + second`), the component-wise transition, and the
/// lead-side input encoding all at once — a change to any of them, or to
/// either component, shifts this trace.
#[test]
fn compose_trace_is_stable() {
    assert_eq!(trace(&composite(), 9, 6, 106, 30, 6), EXPECTED_COMPOSE);
}

/// BEF cancel/split/merge/adopt token dynamics at `L = 3` (10 states);
/// pins the state packing (inactives at 0/1, `+` actives by level, then
/// `-` actives) alongside the sampler stream.
#[test]
fn bef_trace_is_stable() {
    let bef = Bef::new(3).expect("valid parameters");
    assert_eq!(trace(&bef, 9, 6, 107, 60, 6), EXPECTED_BEF);
}

/// DEGSSU clocked dynamics at `L = 3`, `T = 2` (26 states); pins the
/// `(sign, level, clock)` packing, the clock-gated split/merge, and the
/// cross-level absorb rule alongside the sampler stream.
#[test]
fn degssu_trace_is_stable() {
    let degssu = Degssu::new(3, 2).expect("valid parameters");
    assert_eq!(trace(&degssu, 9, 6, 108, 60, 6), EXPECTED_DEGSSU);
}

/// Regeneration helper (see the module docs). Ignored by default.
#[test]
#[ignore = "prints the current traces for manual regeneration"]
fn print_traces() {
    println!("voter:\n{}\n", trace(&Voter, 9, 6, 101, 30, 6));
    println!("four_state:\n{}\n", trace(&FourState, 9, 6, 102, 30, 6));
    println!(
        "three_state:\n{}\n",
        trace(&ThreeState::new(), 9, 6, 103, 30, 6)
    );
    let avc = Avc::new(5, 1).expect("valid parameters");
    println!("avc:\n{}\n", trace(&avc, 9, 6, 104, 30, 6));
    println!(
        "leader_election:\n{}\n",
        trace(&LeaderElection, 15, 0, 105, 60, 6)
    );
    println!("epidemic:\n{}\n", trace(&Epidemic, 3, 12, 109, 60, 6));
    println!("compose:\n{}\n", trace(&composite(), 9, 6, 106, 30, 6));
    let bef = Bef::new(3).expect("valid parameters");
    println!("bef:\n{}\n", trace(&bef, 9, 6, 107, 60, 6));
    let degssu = Degssu::new(3, 2).expect("valid parameters");
    println!("degssu:\n{}\n", trace(&degssu, 9, 6, 108, 60, 6));
}
