//! Majority population protocols.
//!
//! This crate implements the protocols studied in *Fast and Exact Majority
//! in Population Protocols* (Alistarh, Gelashvili, Vojnović; PODC 2015):
//!
//! * [`Avc`] — the paper's contribution, **Average-and-Conquer**: an exact
//!   majority protocol with `s = m + 2d + 1` states converging in
//!   `O(log n/(sε) + log n log s)` expected parallel time;
//! * [`FourState`] — the four-state exact protocol of Draief–Vojnović and
//!   Mertzios et al. (`O(log n/ε)` parallel time, zero error);
//! * [`ThreeState`] — the three-state *approximate* protocol of
//!   Angluin–Aspnes–Eisenstat and Perron–Vasudevan–Vojnović (`O(log n)`
//!   parallel time w.h.p., but error probability `exp(−cε²n)`);
//! * [`Voter`] — the classical two-state voter model of Hassin–Peleg
//!   (`Ω(n)` parallel time, error probability `(1−ε)/2`);
//! * [`LeaderElection`] — the classical pairwise-elimination baseline for
//!   the paper's §6 open question;
//! * [`Epidemic`] — one-way broadcast, the executable form of the
//!   information-propagation process behind the `Ω(log n)` lower bound.
//!
//! Two rival exact-majority protocols from follow-up work round out the
//! comparison set:
//!
//! * [`Bef`] — the Berenbrink–Elsässer–Friedetzky cancel/split/merge
//!   protocol (arXiv:1805.05157), `2L + 4` states of signed power-of-two
//!   tokens;
//! * [`Degssu`] — the Doty et al. time-and-space-optimal protocol
//!   (arXiv:2106.10201) reproduced as a clocked cancel/split:
//!   `2(L+1)(T+1) + 2` states, splits gated by a per-agent phase clock.
//!
//! All protocols implement [`avc_population::Protocol`] and run on any of
//! the engines in [`avc_population::engine`].
//!
//! # Example: exact majority from a one-agent advantage
//!
//! ```
//! use avc_population::engine::{CountSim, Simulator};
//! use avc_population::{Config, MajorityInstance, Opinion};
//! use avc_protocols::Avc;
//! use rand::SeedableRng;
//!
//! let instance = MajorityInstance::one_extra(1001);
//! let protocol = Avc::with_states(1000)?; // the paper's "n-state AVC"
//! let config = Config::from_input(&protocol, instance.a(), instance.b());
//! let mut sim = CountSim::new(protocol, config);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let out = sim.run_to_consensus(&mut rng, u64::MAX);
//! assert_eq!(out.verdict.opinion(), Some(Opinion::A)); // never errs
//! # Ok::<(), avc_protocols::AvcParameterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;

mod avc;
mod bef;
mod degssu;
mod epidemic;
mod four_state;
mod leader_election;
mod three_state;
mod voter;

pub use crate::avc::{Avc, AvcParameterError, AvcState, Sign};
pub use crate::bef::{Bef, BefParameterError};
pub use crate::degssu::{Degssu, DegssuParameterError};
pub use crate::epidemic::Epidemic;
pub use crate::four_state::{FourState, FourStateState};
pub use crate::leader_election::LeaderElection;
pub use crate::three_state::ThreeState;
pub use crate::voter::Voter;
