//! Exact (not sampled) expected convergence times from the absorbing-chain
//! linear system, at model-checking scale: the four-state protocol vs AVC
//! across every margin of a small population — the precision/speed picture
//! of the paper with zero Monte-Carlo noise.
//!
//! Run with: `cargo run --release --example exact_analysis`

use avc::analysis::table::{fmt_num, Table};
use avc::population::{Config, ConvergenceRule};
use avc::protocols::{Avc, FourState};
use avc::verify::exact_time::expected_steps_to_convergence;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10u64;
    let avc = Avc::new(5, 1)?;

    let mut table = Table::new(
        format!("exact E[steps to consensus] on n = {n} (linear-system solution)"),
        ["a", "b", "four_state", "avc(m=5)", "speedup"],
    );

    for a in 6..=10u64 {
        let b = n - a;
        let four = expected_steps_to_convergence(
            &FourState,
            &Config::from_input(&FourState, a, b),
            ConvergenceRule::OutputConsensus,
            2_000_000,
        )?
        .expect("four-state always converges");
        let avc_time = expected_steps_to_convergence(
            &avc,
            &Config::from_input(&avc, a, b),
            ConvergenceRule::OutputConsensus,
            2_000_000,
        )?
        .expect("AVC always converges");
        table.push_row([
            a.to_string(),
            b.to_string(),
            fmt_num(four),
            fmt_num(avc_time),
            format!("{:.2}x", four / avc_time),
        ]);
    }

    println!("{}", table.to_markdown());
    println!(
        "Even at n = {n}, the exact expectations show AVC ahead at the hard margins\n\
         (a = 6 vs b = 4) and the gap closing as the margin widens — the same\n\
         crossover structure Figure 4 shows at n = 100 001."
    );
    Ok(())
}
