//! Pins the fused double-select rewrite of `CountSim`'s second-agent draw.
//!
//! PR 4 replaced the two independent Fenwick walks — `select(t)` then
//! conditionally `select(t + 1)` — with one fused `select_pair(t)` descent.
//! The optimization is only sound if it is invisible: the same `(i, j)`
//! species pair must come out of the same RNG draws, so that golden traces
//! and every seeded experiment stay byte-identical. This test drives the
//! real engine against an independent replica of the *old* two-walk step
//! loop and checks counts and RNG stream stay in lockstep.

use avc_population::engine::{CountSim, Simulator};
use avc_population::sampler::FenwickSampler;
use avc_population::{Config, Protocol, StateId};
use avc_protocols::{FourState, ThreeState};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// One step of the pre-PR-4 `CountSim` loop: identical draws, but the
/// second agent's species is resolved with two independent `select` walks.
fn old_style_step<P: Protocol>(
    protocol: &P,
    counts: &mut [u64],
    sampler: &mut FenwickSampler,
    rng: &mut SmallRng,
) {
    let total = sampler.total();
    let i = sampler.select(rng.gen_range(0..total)) as StateId;
    let t = rng.gen_range(0..total - 1);
    let s0 = sampler.select(t) as StateId;
    let j = if s0 < i {
        s0
    } else {
        sampler.select(t + 1) as StateId
    };
    let (x, y) = protocol.transition(i, j);
    if (x == i && y == j) || (x == j && y == i) {
        return;
    }
    for (k, d) in [(i, -1i64), (j, -1), (x, 1), (y, 1)] {
        counts[k as usize] = (counts[k as usize] as i64 + d) as u64;
        sampler.add(k as usize, d);
    }
}

/// Runs `steps` steps on both implementations from the same seed and
/// asserts identical configurations throughout and an identical RNG stream
/// afterwards.
fn assert_lockstep<P: Protocol + Clone>(protocol: P, a: u64, b: u64, seed: u64, steps: u64) {
    let config = Config::from_input(&protocol, a, b);
    let mut counts: Vec<u64> = config.as_slice().to_vec();
    let mut sampler = FenwickSampler::from_weights(&counts);
    let mut sim = CountSim::new(protocol.clone(), config);
    let mut rng_new = SmallRng::seed_from_u64(seed);
    let mut rng_old = SmallRng::seed_from_u64(seed);
    for step in 0..steps {
        sim.advance(&mut rng_new);
        old_style_step(&protocol, &mut counts, &mut sampler, &mut rng_old);
        assert_eq!(
            sim.counts(),
            counts.as_slice(),
            "configurations diverged at step {step}"
        );
    }
    // Same draws consumed: the streams must continue identically.
    for _ in 0..8 {
        assert_eq!(
            rng_new.next_u64(),
            rng_old.next_u64(),
            "RNG streams diverged"
        );
    }
}

#[test]
fn fused_select_is_invisible_on_four_state() {
    for seed in 0..5 {
        assert_lockstep(FourState, 60, 41, seed, 4_000);
    }
}

#[test]
fn fused_select_is_invisible_on_three_state() {
    // Asymmetric protocol: initiator/responder order matters, so any (i, j)
    // swap introduced by the fused walk would show up immediately.
    for seed in 5..10 {
        assert_lockstep(ThreeState::new(), 35, 25, seed, 4_000);
    }
}

#[test]
fn select_pair_matches_two_walks_on_random_weights() {
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..50 {
        let len = rng.gen_range(1..200usize);
        let weights: Vec<u64> = (0..len).map(|_| rng.gen_range(0..7)).collect();
        let sampler = FenwickSampler::from_weights(&weights);
        if sampler.total() < 2 {
            continue;
        }
        for _ in 0..100 {
            let t = rng.gen_range(0..sampler.total() - 1);
            let (p0, p1) = sampler.select_pair(t);
            assert_eq!(p0, sampler.select(t));
            assert_eq!(p1, sampler.select(t + 1));
        }
    }
}
