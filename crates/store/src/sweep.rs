//! The sweep engine: checkpointed execution of a cell grid plus export.
//!
//! A [`Plan`] enumerates an experiment's cells (each with a [`Manifest`]
//! identity and a closure that computes its [`CellResult`]) and knows how to
//! assemble the final tables from the full, ordered result list. Running a
//! plan consults the [`Store`] before every cell: completed cells are
//! skipped, missing ones run and are appended durably *before* the next
//! cell starts. Killing the process at any point therefore loses at most
//! the in-flight cell, and a rerun of the same command resumes there —
//! cells are seeded independently of each other and of the `Parallelism`
//! setting, so the resumed sweep's export is byte-identical to an
//! uninterrupted run's.
//!
//! Cell closures are clients of the chunked run driver
//! (`avc_population::driver::Driver`) via the analysis harness: per-trial
//! stepping is monomorphized inside each engine, and checkpoints see only
//! the driver's `RunOutcome`s, which are chunking-invariant — the resume
//! byte-identity above is unaffected by how the driver slices a run.

use crate::manifest::Manifest;
use crate::record::{CellResult, Record};
use crate::store::Store;
use avc_analysis::harness::StatsCollector;
use avc_analysis::table::Table;
use avc_population::telemetry::export::JsonlWriter;
use avc_population::telemetry::Span;
use std::io;

/// One runnable cell of a sweep.
pub struct Cell {
    /// The cell's content-addressed identity.
    pub manifest: Manifest,
    /// Short human label (also stored in the manifest under `cell`).
    pub label: String,
    /// Computes the cell. Must depend only on the manifest's parameters.
    pub run: Box<dyn Fn(&StatsCollector) -> CellResult>,
}

/// Everything `avc export` produces for a sweep.
pub struct Export {
    /// `(file_stem, table)` pairs to write as `<out>/<stem>.csv`.
    pub tables: Vec<(String, Table)>,
    /// Extra stdout lines (terminal plots, fitted slopes, check verdicts).
    pub trailer: Vec<String>,
}

/// A fully-specified sweep: cells plus the export assembly.
pub struct Plan {
    /// Sweep spec name (`fig3`, …).
    pub name: String,
    /// One-line banner description.
    pub banner: String,
    /// Cells in deterministic grid order.
    pub cells: Vec<Cell>,
    /// Assembles the export from results ordered as [`Plan::cells`].
    #[allow(clippy::type_complexity)]
    pub export: Box<dyn Fn(&[&CellResult]) -> Export>,
}

/// What [`run`] did for each cell class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepOutcome {
    /// Cells found complete in the store and skipped.
    pub cached: usize,
    /// Cells executed this invocation.
    pub ran: usize,
}

/// Runs every missing cell of `plan`, checkpointing each into `store` as it
/// completes. Progress lines go to stderr when `verbose`.
///
/// # Errors
///
/// Propagates I/O errors from the store append; the sweep stops at the
/// first failed append (completed cells stay durable).
pub fn run(
    store: &mut Store,
    plan: &Plan,
    stats: &StatsCollector,
    verbose: bool,
) -> io::Result<SweepOutcome> {
    let mut outcome = SweepOutcome::default();
    let total = plan.cells.len();
    // Per-cell telemetry journal beside the records file. Opening tolerates
    // a torn final line (the crash signature), so a resumed sweep appends
    // cleanly after a kill.
    let mut journal = JsonlWriter::open(&telemetry_path(store))?;
    for (i, cell) in plan.cells.iter().enumerate() {
        let hash = cell.manifest.hash();
        if store.get(&hash).is_some() {
            outcome.cached += 1;
            if verbose {
                eprintln!(
                    "[cell {}/{total}] {} — cached ({})",
                    i + 1,
                    cell.label,
                    &hash[..12]
                );
            }
            continue;
        }
        let started = Span::start();
        let result = (cell.run)(stats);
        let wall_ms = started.elapsed_ms();
        if let Some(telemetry) = &result.telemetry {
            journal.append(&format!(
                "{{\"hash\":\"{hash}\",\"cell\":\"{}\",\"telemetry\":{}}}",
                avc_population::telemetry::export::json_escape(&cell.label),
                telemetry.to_json()
            ))?;
        }
        store.append(Record::new(cell.manifest.clone(), result, wall_ms))?;
        outcome.ran += 1;
        if verbose {
            eprintln!(
                "[cell {}/{total}] {} — ran in {:.1}s ({})",
                i + 1,
                cell.label,
                wall_ms as f64 / 1e3,
                &hash[..12]
            );
        }
    }
    Ok(outcome)
}

/// The sweep telemetry journal's path: `telemetry.jsonl` beside the
/// registry's `records.jsonl`. One line per cell *executed* (cached cells
/// re-run nothing, so they journal nothing), in execution order.
#[must_use]
pub fn telemetry_path(store: &Store) -> std::path::PathBuf {
    store.dir().join("telemetry.jsonl")
}

/// Collects the ordered results for `plan` from the store.
///
/// # Errors
///
/// Returns the labels and hashes of missing cells (the `avc export`
/// error message).
pub fn collect<'s>(store: &'s Store, plan: &Plan) -> Result<Vec<&'s CellResult>, String> {
    let mut results = Vec::with_capacity(plan.cells.len());
    let mut missing = Vec::new();
    for cell in &plan.cells {
        match store.get(&cell.manifest.hash()) {
            Some(record) => results.push(&record.result),
            None => missing.push(format!(
                "  {} ({})",
                cell.label,
                &cell.manifest.hash()[..12]
            )),
        }
    }
    if missing.is_empty() {
        Ok(results)
    } else {
        Err(format!(
            "{} of {} cells missing from the store — run `avc sweep {}` first:\n{}",
            missing.len(),
            plan.cells.len(),
            plan.name,
            missing.join("\n")
        ))
    }
}

/// Builds the export for `plan` from the store.
///
/// # Errors
///
/// As [`collect`].
pub fn export(store: &Store, plan: &Plan) -> Result<Export, String> {
    let results = collect(store, plan)?;
    Ok((plan.export)(&results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell as StdCell;
    use std::rc::Rc;

    fn counting_plan(counter: Rc<StdCell<u32>>) -> Plan {
        let cells = (0..3u64)
            .map(|i| {
                let counter = counter.clone();
                Cell {
                    manifest: Manifest::new("demo", [("i", i.to_string())]),
                    label: format!("i={i}"),
                    run: Box::new(move |_| {
                        counter.set(counter.get() + 1);
                        CellResult {
                            notes: vec![format!("cell {i}")],
                            ..CellResult::default()
                        }
                    }),
                }
            })
            .collect();
        Plan {
            name: "demo".to_string(),
            banner: "demo sweep".to_string(),
            cells,
            export: Box::new(|results| {
                let mut t = Table::new("demo", ["note"]);
                for r in results {
                    t.push_row([r.notes[0].clone()]);
                }
                Export {
                    tables: vec![("demo".to_string(), t)],
                    trailer: vec![],
                }
            }),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("avc-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_run_is_fully_cached() {
        let dir = temp_dir("cached");
        let counter = Rc::new(StdCell::new(0));
        let plan = counting_plan(counter.clone());
        let stats = StatsCollector::new();

        let mut store = Store::open(&dir).unwrap();
        let first = run(&mut store, &plan, &stats, false).unwrap();
        assert_eq!((first.ran, first.cached), (3, 0));
        assert_eq!(counter.get(), 3);

        // Fresh open, same plan: everything cached, closures never invoked.
        let mut store = Store::open(&dir).unwrap();
        let second = run(&mut store, &plan, &stats, false).unwrap();
        assert_eq!((second.ran, second.cached), (0, 3));
        assert_eq!(counter.get(), 3);

        let exported = export(&store, &plan).unwrap();
        assert_eq!(exported.tables[0].1.num_rows(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_store_resumes_only_missing_cells() {
        let dir = temp_dir("partial");
        let counter = Rc::new(StdCell::new(0));
        let plan = counting_plan(counter.clone());
        let stats = StatsCollector::new();

        // Simulate an interrupted sweep: only cell 0 durable.
        {
            let mut store = Store::open(&dir).unwrap();
            let first_cell = &plan.cells[0];
            let result = (first_cell.run)(&stats);
            store
                .append(Record::new(first_cell.manifest.clone(), result, 1))
                .unwrap();
        }
        assert_eq!(counter.get(), 1);

        let mut store = Store::open(&dir).unwrap();
        assert!(export(&store, &plan)
            .map(|_| ())
            .unwrap_err()
            .contains("2 of 3"));
        let outcome = run(&mut store, &plan, &stats, false).unwrap();
        assert_eq!((outcome.ran, outcome.cached), (2, 1));
        assert_eq!(counter.get(), 3);
        assert!(export(&store, &plan).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
