//! Test-case configuration, failure type, and the deterministic test RNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Per-test configuration (only the fields this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A test-case failure: the message produced by a `prop_assert!` macro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The RNG driving strategy generation.
///
/// Seeded deterministically from the test name (FNV-1a), so every run of a
/// given test explores the same input sequence — failures are always
/// reproducible by rerunning the test.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// The deterministic RNG for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> TestRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(hash),
        }
    }

    /// The underlying generator.
    pub fn inner(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}
