//! Named sweep specs: one per legacy bench binary.
//!
//! Each spec turns parsed CLI flags into a [`Plan`] — the cell grid with
//! content-addressed manifests plus the export assembly that regenerates
//! the exact `results/*.csv` files the legacy binaries wrote. The legacy
//! `avc-bench` bins are thin aliases over these specs, so the store path
//! and the legacy path execute the *same* per-cell code
//! (`fig3::run_cell`, `fig4::run_point`, …) and render rows through the
//! same table builders: byte-identity between the two is by construction,
//! not by test luck.

mod checks;
mod figures;
mod sweeps;

use crate::record::TrialSummary;
use crate::sweep::Plan;
use avc_analysis::cli::Args;
use avc_analysis::harness::TrialResults;
use avc_analysis::stats::Summary;
use avc_analysis::table::Table;
use avc_population::{ConvergenceRule, Scenario};

/// `(name, description)` of every sweep spec, in `avc help` order.
pub const NAMES: [(&str, &str); 11] = [
    (
        "fig3",
        "Figure 3: 3-state vs 4-state vs n-state AVC at eps = 1/n",
    ),
    ("fig4", "Figure 4: AVC time vs margin for 13 state counts"),
    (
        "lb_four_state",
        "Theorem B.1: four-state Θ(1/eps) scaling exponent",
    ),
    (
        "lb_info",
        "Theorem C.1: knowledge-set cover time (Ω(log n) bound)",
    ),
    (
        "err_three_state",
        "PVV09 error law: three-state error fraction vs the KL bound",
    ),
    (
        "ablation_d",
        "§6 ablation: state-budget split between m and d",
    ),
    ("dynamics", "§4 structure: one traced AVC trajectory"),
    (
        "graph_gap",
        "DV12: four-state time vs interaction-graph spectral gap",
    ),
    (
        "robustness",
        "Exactness under adversarial schedulers and injected faults",
    ),
    (
        "mc_avc",
        "Model check: AVC invariants and exactness (exhaustive)",
    ),
    (
        "mc_three_state",
        "Model check: MNRS14 three-state impossibility (exhaustive)",
    ),
];

/// Builds the plan for a named sweep from parsed flags, or `None` for an
/// unknown name.
#[must_use]
pub fn build(name: &str, args: &Args) -> Option<Plan> {
    match name {
        "fig3" => Some(figures::fig3_plan(args)),
        "fig4" => Some(figures::fig4_plan(args)),
        "dynamics" => Some(figures::dynamics_plan(args)),
        "lb_four_state" => Some(sweeps::lb_four_state_plan(args)),
        "lb_info" => Some(sweeps::lb_info_plan(args)),
        "err_three_state" => Some(sweeps::err_three_state_plan(args)),
        "ablation_d" => Some(sweeps::ablation_d_plan(args)),
        "graph_gap" => Some(sweeps::graph_gap_plan(args)),
        "robustness" => Some(sweeps::robustness_plan(args)),
        "mc_avc" => Some(checks::mc_avc_plan(args)),
        "mc_three_state" => Some(checks::mc_three_state_plan(args)),
        _ => None,
    }
}

/// Extracts the durable trial payload from harness results: converged-time
/// samples in the canonical `Summary` order plus error bookkeeping.
pub(crate) fn trials_of(results: &TrialResults) -> TrialSummary {
    let mut samples = results.converged_times();
    samples.sort_by(f64::total_cmp);
    TrialSummary {
        samples,
        error_fraction: results.error_fraction(),
        total_runs: results.outcomes().len() as u64,
    }
}

/// As [`trials_of`] for experiments that only retain a [`Summary`] (every
/// trial converged; no error notion).
pub(crate) fn trials_of_summary(summary: &Summary) -> TrialSummary {
    TrialSummary {
        samples: summary.samples().to_vec(),
        error_fraction: 0.0,
        total_runs: summary.count as u64,
    }
}

/// The single data row of a one-row table (cells contribute exactly one row
/// per table they participate in).
pub(crate) fn only_row(table: &Table) -> Vec<String> {
    assert_eq!(table.num_rows(), 1, "expected a single-row table");
    table.rows()[0].clone()
}

/// The two manifest params embedding a cell's declarative scenario: its
/// canonical JSON form and the SHA-256 of that form. A manifest carrying
/// these suffices to re-run the cell byte-identically — `avc run` executes
/// the embedded JSON directly.
pub(crate) fn scenario_params(scenario: &Scenario) -> [(&'static str, String); 2] {
    [
        ("scenario", scenario.canonical()),
        ("scenario_hash", scenario.hash()),
    ]
}

/// The manifest name of a convergence rule (the scenario plane's canonical
/// rule names).
pub(crate) fn rule_name(rule: ConvergenceRule) -> &'static str {
    match rule {
        ConvergenceRule::OutputConsensus => "output_consensus",
        ConvergenceRule::StateConsensus => "state_consensus",
        ConvergenceRule::Silence => "silence",
        ConvergenceRule::OutputCount { .. } => "output_count",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn every_registered_name_builds() {
        let quick = args(&["--quick"]);
        for (name, _) in NAMES {
            let plan = build(name, &quick).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(plan.name, name);
            assert!(!plan.cells.is_empty(), "{name} has no cells");
            for cell in &plan.cells {
                assert_eq!(cell.manifest.experiment, name);
                assert_eq!(cell.manifest.get("cell"), Some(cell.label.as_str()));
            }
        }
        assert!(build("nope", &quick).is_none());
    }

    #[test]
    fn manifests_are_distinct_within_a_plan() {
        for (name, _) in NAMES {
            let plan = build(name, &args(&["--quick"])).unwrap();
            let mut hashes: Vec<String> = plan.cells.iter().map(|c| c.manifest.hash()).collect();
            hashes.sort();
            hashes.dedup();
            assert_eq!(hashes.len(), plan.cells.len(), "{name} has colliding cells");
        }
    }

    #[test]
    fn parallelism_does_not_enter_the_manifest() {
        let serial = build("fig3", &args(&["--quick", "--serial"])).unwrap();
        let threads = build("fig3", &args(&["--quick", "--threads", "4"])).unwrap();
        for (a, b) in serial.cells.iter().zip(&threads.cells) {
            assert_eq!(a.manifest.hash(), b.manifest.hash());
        }
    }

    #[test]
    fn seed_enters_the_manifest() {
        let a = build("fig4", &args(&["--quick"])).unwrap();
        let b = build("fig4", &args(&["--quick", "--seed", "99"])).unwrap();
        assert_ne!(a.cells[0].manifest.hash(), b.cells[0].manifest.hash());
    }

    /// Sweeps whose cells run through the scenario plane.
    const SCENARIO_SWEEPS: [&str; 6] = [
        "fig3",
        "fig4",
        "lb_four_state",
        "err_three_state",
        "ablation_d",
        "robustness",
    ];

    #[test]
    fn embedded_scenarios_are_canonical_and_hashed() {
        for name in SCENARIO_SWEEPS {
            let plan = build(name, &args(&["--quick"])).unwrap();
            for cell in &plan.cells {
                let text = cell
                    .manifest
                    .get("scenario")
                    .unwrap_or_else(|| panic!("{name}/{} lacks a scenario param", cell.label));
                let scenario = Scenario::parse(text)
                    .unwrap_or_else(|e| panic!("{name}/{}: embedded scenario: {e}", cell.label));
                assert_eq!(
                    scenario.canonical(),
                    text,
                    "{name}/{}: embedded form is not canonical",
                    cell.label
                );
                assert_eq!(
                    cell.manifest.get("scenario_hash"),
                    Some(scenario.hash().as_str()),
                    "{name}/{}: scenario_hash param disagrees with the scenario",
                    cell.label
                );
            }
        }
    }

    /// The reproducibility contract end to end: parsing the `scenario`
    /// param out of a manifest and running it through [`ScenarioPlan`]
    /// yields exactly the trial payload the cell's own runner checkpoints.
    /// No spec code, flags, or grid indices needed — the manifest alone
    /// re-runs the cell.
    #[test]
    fn manifest_scenario_alone_replays_the_cell() {
        use avc_analysis::harness::{ScenarioPlan, StatsCollector};

        let plan = build("fig3", &args(&["--quick"])).unwrap();
        let cell = plan
            .cells
            .iter()
            .find(|c| c.label == "n=11/avc")
            .expect("quick fig3 has an n=11 avc cell");

        let direct = (cell.run)(&StatsCollector::new());
        let trials = direct.trials.expect("fig3 cells checkpoint trials");

        let replayed = Scenario::parse(cell.manifest.get("scenario").unwrap())
            .expect("embedded scenario parses");
        let results = ScenarioPlan::new(replayed).run();
        let mut samples = results.converged_times();
        samples.sort_by(f64::total_cmp);

        assert_eq!(trials.samples, samples, "replay diverged from the cell");
        assert_eq!(trials.error_fraction, results.error_fraction());
        assert_eq!(trials.total_runs, results.outcomes().len() as u64);
    }
}
