//! Records one **AVC trajectory** (the empirical counterpart of the §4
//! analysis): extremal weights halving, the strong → intermediate → weak
//! population shift, and the live value-sum invariant.
//!
//! Usage: `cargo run --release -p avc-bench --bin dynamics [--quick]
//! [--n N] [--m M] [--d D] [--eps X] [--seed N] [--out DIR]`

use avc_analysis::cli::Args;
use avc_analysis::experiments::{dynamics, report};

fn main() {
    let args = Args::from_env();
    let mut config = if args.flag("quick") {
        dynamics::Config::quick()
    } else {
        dynamics::Config::default()
    };
    config.n = args.get_u64("n", config.n);
    config.m = args.get_u64("m", config.m);
    config.d = args.get_u64("d", config.d as u64) as u32;
    config.epsilon = args.get_f64("eps", config.epsilon);
    config.seed = args.get_u64("seed", config.seed);

    avc_bench::banner(
        "Dynamics (analysis §4 structure)",
        &format!(
            "one AVC run: n = {}, m = {}, d = {}, eps = {}",
            config.n, config.m, config.d, config.epsilon
        ),
    );

    let trace = dynamics::run(&config);
    let out = avc_bench::out_dir(&args);
    report(&dynamics::table(&trace, &config), &out, "dynamics");
    println!(
        "run converged: {:?} at parallel time {:.1}",
        trace.outcome.verdict, trace.outcome.parallel_time
    );
}
