//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform, StandardSample};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `map` to every generated value.
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.inner().gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.inner().gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: StandardSample {}

impl<T: StandardSample> Arbitrary for T {}

/// The whole-domain strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.inner().gen::<T>()
    }
}
