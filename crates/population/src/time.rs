//! Discrete steps, parallel time, and the continuous-time model.
//!
//! The paper's discrete model draws one interacting pair per step and
//! defines one unit of *parallel time* as `n` steps. The continuous-time
//! model instead lets each agent (or each ordered pair) interact at
//! instances of a Poisson process; the two are "essentially equivalent"
//! (§1): conditioned on the jump sequence, the continuous model is the
//! discrete chain with i.i.d. `Exponential(n)` holding times between steps
//! (time scaled so each agent initiates at rate 1), so continuous time
//! concentrates around parallel time.

use rand::Rng;
use rand_distr::{Distribution, Exp};

/// Converts a discrete step count into parallel time for population `n`.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Example
///
/// ```
/// use avc_population::time::parallel_time;
/// assert_eq!(parallel_time(5_000, 1_000), 5.0);
/// ```
#[must_use]
pub fn parallel_time(steps: u64, n: u64) -> f64 {
    assert!(n > 0, "population must be nonzero");
    steps as f64 / n as f64
}

/// A continuous-time clock for the Poisson interaction model.
///
/// Each of the `n` agents initiates interactions at rate 1, so global
/// events form a Poisson process of rate `n`: inter-event times are
/// `Exponential(n)`. Layering this clock over a discrete-step engine yields
/// the continuous-time model exactly.
///
/// # Example
///
/// ```
/// use avc_population::time::ContinuousClock;
/// use rand::SeedableRng;
///
/// let mut clock = ContinuousClock::new(100);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
/// for _ in 0..100 {
///     clock.tick(&mut rng);
/// }
/// // After 100 events at rate 100, elapsed time concentrates near 1.0.
/// assert!(clock.elapsed() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ContinuousClock {
    rate: f64,
    elapsed: f64,
}

impl ContinuousClock {
    /// A clock for a population of `n` agents (event rate `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: u64) -> ContinuousClock {
        assert!(n > 0, "population must be nonzero");
        ContinuousClock {
            rate: n as f64,
            elapsed: 0.0,
        }
    }

    /// Advances past one interaction event; returns the holding time.
    pub fn tick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let dt = Exp::new(self.rate).expect("rate is positive").sample(rng);
        self.elapsed += dt;
        dt
    }

    /// Advances past `k` consecutive events in one draw (an `Erlang(k, n)`
    /// holding time, sampled as a sum). Used when the discrete engine skips
    /// silent steps in batches.
    pub fn tick_many<R: Rng + ?Sized>(&mut self, rng: &mut R, k: u64) -> f64 {
        // Sum of k exponentials; for very large k this is effectively
        // deterministic (k/rate ± O(√k)/rate), but we keep exact sampling
        // below a threshold and use a normal approximation above it.
        const EXACT_LIMIT: u64 = 4_096;
        let dt = if k <= EXACT_LIMIT {
            let exp = Exp::new(self.rate).expect("rate is positive");
            (0..k).map(|_| exp.sample(rng)).sum()
        } else {
            let mean = k as f64 / self.rate;
            let std = (k as f64).sqrt() / self.rate;
            let gauss = rand_distr::Normal::new(mean, std).expect("finite parameters");
            gauss.sample(rng).max(0.0)
        };
        self.elapsed += dt;
        dt
    }

    /// Total continuous time elapsed.
    #[must_use]
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_time_is_steps_over_n() {
        assert_eq!(parallel_time(0, 10), 0.0);
        assert_eq!(parallel_time(25, 10), 2.5);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn parallel_time_rejects_zero_population() {
        let _ = parallel_time(1, 0);
    }

    #[test]
    fn clock_concentrates_on_parallel_time() {
        let n = 1_000u64;
        let mut clock = ContinuousClock::new(n);
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..10 * n {
            clock.tick(&mut rng);
        }
        // 10n events at rate n: elapsed ≈ 10 with relative sd 1/√(10n) ≈ 1%.
        assert!((clock.elapsed() - 10.0).abs() < 0.5, "{}", clock.elapsed());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn clock_rejects_zero_population() {
        let _ = ContinuousClock::new(0);
    }

    #[test]
    fn single_agent_clock_is_rate_one() {
        // n = 1 is degenerate for interactions but the clock itself is
        // well-defined: unit rate, strictly positive holding times.
        let mut clock = ContinuousClock::new(1);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut total = 0.0;
        for _ in 0..1_000 {
            let dt = clock.tick(&mut rng);
            assert!(dt > 0.0, "holding times are strictly positive");
            total += dt;
        }
        assert_eq!(clock.elapsed(), total);
        // 1000 events at rate 1: elapsed ≈ 1000 with sd ≈ √1000 ≈ 32.
        assert!(
            (clock.elapsed() - 1_000.0).abs() < 150.0,
            "{}",
            clock.elapsed()
        );
    }

    #[test]
    fn tick_many_zero_events_is_free() {
        let mut clock = ContinuousClock::new(10);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(clock.tick_many(&mut rng, 0), 0.0);
        assert_eq!(clock.elapsed(), 0.0);
    }

    #[test]
    fn tick_many_is_sane_across_the_approximation_boundary() {
        // k = 4096 takes the exact-sum path, k = 4097 the normal
        // approximation; both must stay positive, finite, and near k/rate.
        for k in [4_096u64, 4_097] {
            let mut clock = ContinuousClock::new(1_000);
            let mut rng = SmallRng::seed_from_u64(k);
            let dt = clock.tick_many(&mut rng, k);
            assert!(dt.is_finite() && dt > 0.0);
            let mean = k as f64 / 1_000.0;
            assert!((dt - mean).abs() < 0.5, "k={k}: dt={dt}");
            assert_eq!(clock.elapsed(), dt);
        }
    }

    #[test]
    fn tick_many_matches_tick_in_expectation() {
        let n = 100u64;
        let mut rng = SmallRng::seed_from_u64(23);
        let mut a = ContinuousClock::new(n);
        a.tick_many(&mut rng, 50_000); // normal-approximation path
        assert!((a.elapsed() - 500.0).abs() < 10.0, "{}", a.elapsed());

        let mut b = ContinuousClock::new(n);
        b.tick_many(&mut rng, 1_000); // exact path
        assert!((b.elapsed() - 10.0).abs() < 1.5, "{}", b.elapsed());
    }
}
