//! Simulation substrate for *population protocols*.
//!
//! A population protocol is a system of `n` anonymous agents, each running
//! the same deterministic state machine over a finite state set `Q`. In each
//! discrete step the scheduler draws an ordered pair of distinct agents
//! uniformly at random (on a clique; more generally, an edge of an
//! interaction graph) and both agents update their states according to the
//! protocol's transition function `δ`. One unit of *parallel time* is `n`
//! consecutive steps.
//!
//! This crate provides everything needed to define and execute such
//! protocols at the scale used in the evaluation of *Fast and Exact Majority
//! in Population Protocols* (Alistarh, Gelashvili, Vojnović; PODC 2015):
//!
//! * [`Protocol`] — the state machine abstraction (states, transition,
//!   output, input encoding);
//! * [`Config`] — a configuration as a multiset of states (species counts);
//! * three simulation engines with different cost models:
//!   * [`AgentSim`](engine::AgentSim) — per-agent, supports arbitrary
//!     [interaction graphs](graph::Graph);
//!   * [`CountSim`](engine::CountSim) — species counts + Fenwick-tree
//!     categorical sampling, `O(log s)` per step;
//!   * [`JumpSim`](engine::JumpSim) — species counts with *null-step
//!     skipping*: steps whose interaction provably leaves the configuration
//!     unchanged are skipped in geometrically-sampled batches, so the cost
//!     is proportional to the number of *productive* interactions. This is
//!     what makes slow protocols (e.g. the four-state exact-majority
//!     protocol at `ε = 1/n`, whose convergence takes `Θ(n² log n)` raw
//!     steps) simulable at the paper's full scale.
//! * [`spec`] — the majority-problem specification and convergence rules.
//!
//! # Quick example
//!
//! ```
//! use avc_population::{Protocol, StateId, Opinion, Config};
//! use avc_population::engine::{CountSim, Simulator};
//! use rand::SeedableRng;
//!
//! /// The two-state voter model: the responder adopts the initiator's state.
//! struct Voter;
//!
//! impl Protocol for Voter {
//!     fn num_states(&self) -> u32 { 2 }
//!     fn transition(&self, initiator: StateId, _responder: StateId) -> (StateId, StateId) {
//!         (initiator, initiator)
//!     }
//!     fn output(&self, state: StateId) -> Opinion {
//!         if state == 0 { Opinion::A } else { Opinion::B }
//!     }
//!     fn input(&self, opinion: Opinion) -> StateId {
//!         match opinion { Opinion::A => 0, Opinion::B => 1 }
//!     }
//!     fn name(&self) -> &str { "voter" }
//! }
//!
//! let config = Config::from_input(&Voter, 8, 3); // 8 agents in A, 3 in B
//! let mut sim = CountSim::new(Voter, config);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let outcome = sim.run_to_consensus(&mut rng, u64::MAX);
//! assert!(outcome.verdict.is_consensus());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cached;
pub mod config;
pub mod driver;
pub mod engine;
pub mod faults;
pub mod graph;
pub mod hash;
pub mod json;
pub mod protocol;
pub mod rngutil;
pub mod sampler;
pub mod scenario;
pub mod sched;
pub mod spec;
pub mod spectral;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use config::Config;
pub use protocol::{Opinion, Protocol, StateId};
pub use scenario::{EngineKind, ProtocolSpec, Scenario, SchedulerSpec};
pub use spec::{ConvergenceRule, MajorityInstance};
