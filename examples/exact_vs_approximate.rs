//! The precision/speed trade-off the paper resolves, in one table:
//! voter (2 states), three-state, four-state, and AVC on the same instance.
//!
//! Run with: `cargo run --release --example exact_vs_approximate`

use avc::analysis::harness::{run_trials, EngineKind, TrialPlan};
use avc::analysis::table::{fmt_num, Table};
use avc::population::{ConvergenceRule, MajorityInstance};
use avc::protocols::{Avc, FourState, ThreeState, Voter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1_001;
    let plan = TrialPlan::new(MajorityInstance::one_extra(n))
        .runs(51)
        .seed(7);

    let mut table = Table::new(
        format!("majority protocols at n = {n}, eps = 1/n, 51 runs"),
        [
            "protocol",
            "states",
            "mean_parallel_time",
            "error_fraction",
            "exact?",
        ],
    );

    let voter = run_trials(
        &Voter,
        &plan,
        EngineKind::Count,
        ConvergenceRule::OutputConsensus,
    );
    table.push_row([
        "voter [HP99]".to_string(),
        "2".to_string(),
        fmt_num(voter.mean_parallel_time()),
        fmt_num(voter.error_fraction()),
        "no".to_string(),
    ]);

    let three = run_trials(
        &ThreeState::new(),
        &plan,
        EngineKind::Jump,
        ConvergenceRule::StateConsensus,
    );
    table.push_row([
        "three-state [AAE08,PVV09]".to_string(),
        "3".to_string(),
        fmt_num(three.mean_parallel_time()),
        fmt_num(three.error_fraction()),
        "no".to_string(),
    ]);

    let four = run_trials(
        &FourState,
        &plan,
        EngineKind::Jump,
        ConvergenceRule::OutputConsensus,
    );
    table.push_row([
        "four-state [DV12,MNRS14]".to_string(),
        "4".to_string(),
        fmt_num(four.mean_parallel_time()),
        fmt_num(four.error_fraction()),
        "yes".to_string(),
    ]);

    let avc = Avc::with_states(n)?;
    let states = avc.s();
    let avc_res = run_trials(
        &avc,
        &plan,
        EngineKind::Auto,
        ConvergenceRule::OutputConsensus,
    );
    table.push_row([
        "AVC (this paper)".to_string(),
        states.to_string(),
        fmt_num(avc_res.mean_parallel_time()),
        fmt_num(avc_res.error_fraction()),
        "yes".to_string(),
    ]);

    println!("{}", table.to_markdown());
    println!(
        "AVC is {:.0}x faster than the exact four-state protocol here, with zero errors.",
        four.mean_parallel_time() / avc_res.mean_parallel_time()
    );
    Ok(())
}
