//! Criterion microbenchmarks of the three engines (Abl-2): per-step and
//! per-run cost on matched workloads, quantifying the null-step-skipping
//! speedup that makes the paper-scale Figure 3 runs feasible.

use avc_population::cached::Cached;
use avc_population::engine::{AdaptiveSim, AgentSim, CountSim, JumpSim, Simulator};
use avc_population::{Config, MajorityInstance};
use avc_protocols::{Avc, FourState};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Raw per-step cost: 10 000 scheduler steps of the four-state protocol on
/// a balanced instance (dense regime, no skipping advantage).
fn bench_step_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_cost_four_state_n1001");
    let inst = MajorityInstance::one_extra(1_001);

    group.bench_function("agent", |b| {
        b.iter(|| {
            let config = Config::from_input(&FourState, inst.a(), inst.b());
            let mut sim = AgentSim::on_clique(Cached::new(FourState), config);
            let mut rng = SmallRng::seed_from_u64(1);
            for _ in 0..10_000 {
                sim.advance(&mut rng);
            }
            sim.steps()
        })
    });
    group.bench_function("count", |b| {
        b.iter(|| {
            let config = Config::from_input(&FourState, inst.a(), inst.b());
            let mut sim = CountSim::new(Cached::new(FourState), config);
            let mut rng = SmallRng::seed_from_u64(1);
            for _ in 0..10_000 {
                sim.advance(&mut rng);
            }
            sim.steps()
        })
    });
    group.finish();
}

/// End-to-end convergence of the four-state protocol at `ε = 1/n`: the
/// regime where JumpSim's skipping pays off by orders of magnitude.
fn bench_four_state_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("four_state_to_consensus");
    group.sample_size(10);
    for n in [101u64, 1_001] {
        let inst = MajorityInstance::one_extra(n);
        group.bench_with_input(BenchmarkId::new("jump", n), &n, |b, _| {
            b.iter(|| {
                let config = Config::from_input(&FourState, inst.a(), inst.b());
                let mut sim = JumpSim::new(Cached::new(FourState), config);
                let mut rng = SmallRng::seed_from_u64(2);
                sim.run_to_consensus(&mut rng, u64::MAX).steps
            })
        });
        group.bench_with_input(BenchmarkId::new("count", n), &n, |b, _| {
            b.iter(|| {
                let config = Config::from_input(&FourState, inst.a(), inst.b());
                let mut sim = CountSim::new(Cached::new(FourState), config);
                let mut rng = SmallRng::seed_from_u64(2);
                sim.run_to_consensus(&mut rng, u64::MAX).steps
            })
        });
        group.bench_with_input(BenchmarkId::new("adaptive", n), &n, |b, _| {
            b.iter(|| {
                let config = Config::from_input(&FourState, inst.a(), inst.b());
                let mut sim = AdaptiveSim::new(Cached::new(FourState), config);
                let mut rng = SmallRng::seed_from_u64(2);
                sim.run_to_consensus(&mut rng, u64::MAX).steps
            })
        });
    }
    group.finish();
}

/// AVC end-to-end at a moderate scale across engines.
fn bench_avc_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("avc_s66_to_consensus_n10001");
    group.sample_size(10);
    let inst = MajorityInstance::one_extra(10_001);
    let avc = Avc::with_states(66).expect("valid budget");
    // Built once; cloning the table per iteration is a flat memcpy, matching
    // how the harness shares one table across a trial batch.
    let cached = Cached::new(avc.clone());

    group.bench_function("count", |b| {
        b.iter(|| {
            let config = Config::from_input(&avc, inst.a(), inst.b());
            let mut sim = CountSim::new(cached.clone(), config);
            let mut rng = SmallRng::seed_from_u64(3);
            sim.run_to_consensus(&mut rng, u64::MAX).steps
        })
    });
    group.bench_function("jump", |b| {
        b.iter(|| {
            let config = Config::from_input(&avc, inst.a(), inst.b());
            let mut sim = JumpSim::new(cached.clone(), config);
            let mut rng = SmallRng::seed_from_u64(3);
            sim.run_to_consensus(&mut rng, u64::MAX).steps
        })
    });
    group.bench_function("adaptive", |b| {
        b.iter(|| {
            let config = Config::from_input(&avc, inst.a(), inst.b());
            let mut sim = AdaptiveSim::new(cached.clone(), config);
            let mut rng = SmallRng::seed_from_u64(3);
            sim.run_to_consensus(&mut rng, u64::MAX).steps
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_step_cost,
    bench_four_state_convergence,
    bench_avc_convergence
);
criterion_main!(benches);
