//! Empirically validates **Theorem B.1**: four-state exact majority takes
//! `Ω(1/ε)` parallel time (fitted scaling exponent ≈ 1).
//!
//! Alias for `avc sweep lb_four_state` followed by `avc export
//! lb_four_state` (flags: `--quick --runs --seed --n --serial/--threads
//! --progress --out`), with checkpoint/resume through the result store.

fn main() {
    avc_store::cli::legacy("lb_four_state");
}
