//! Paper experiments, one module per figure/study.
//!
//! Each module exposes a `Config` (with paper defaults and a `quick()`
//! downscaled variant for CI), a `run` function producing [`Table`]s, and is
//! driven by a binary of the same name in the `avc-bench` crate.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig3`] | Figure 3: 3-state vs 4-state vs n-state AVC at `ε = 1/n` (time + error fraction) |
//! | [`fig4`] | Figure 4: AVC time vs `ε` for 13 state counts, and the `s·ε` collapse |
//! | [`four_state_scaling`] | Theorem B.1: empirical `Θ(1/ε)` scaling of the four-state protocol |
//! | [`three_state_error`] | \[PVV09] error law `exp(−Θ(ε²n))` behind Figure 3 (right) |
//! | [`ablation_d`] | §6 discussion: sensitivity of AVC to the level count `d` |
//! | [`dynamics`] | §4 analysis structure: weight halving + population split along a run |
//! | [`graph_gap`] | \[DV12]: four-state time vs interaction-graph spectral gap |
//! | [`robustness`] | §2 model discussion: exactness under adversarial schedulers and injected faults |
//!
//! [`Table`]: crate::table::Table

pub mod ablation_d;
pub mod dynamics;
pub mod fig3;
pub mod fig4;
pub mod four_state_scaling;
pub mod graph_gap;
pub mod robustness;
pub mod three_state_error;

/// Writes a table as CSV under `results/` and prints its markdown rendering.
///
/// The experiment binaries all report through this helper so outputs land
/// consistently in one place.
///
/// # Panics
///
/// Panics if the CSV cannot be written (experiment binaries have no
/// meaningful recovery).
pub fn report(table: &crate::table::Table, out_dir: &str, file_stem: &str) {
    let path = std::path::Path::new(out_dir).join(format!("{file_stem}.csv"));
    table
        .write_csv(&path)
        .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
    println!("{}", table.to_markdown());
    println!("[written to {}]\n", path.display());
}
