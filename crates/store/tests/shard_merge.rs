//! The shard/merge protocol end to end: `avc sweep --shard i/k` slices the
//! cell grid into disjoint covering parts, and `avc merge` folds the shard
//! stores back into a `records.jsonl` **byte-identical** to an unsharded
//! sweep's.
//!
//! Byte-identity needs every nondeterministic byte out of the store, so the
//! child processes run with `AVC_TELEMETRY_NOWALL` set: the sweep then
//! records `wall_ms` as 0 and strips the telemetry `wall` registry, leaving
//! records that are a pure function of the plan and seed.

use avc_analysis::cli::Args;
use avc_store::sweep::Shard;
use std::path::Path;
use std::process::Command;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("avc-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn avc(dir: &Path, args: &[&str]) {
    let status = Command::new(env!("CARGO_BIN_EXE_avc"))
        .args(args)
        .args(["--out", dir.to_str().expect("utf-8 temp path")])
        .env("AVC_TELEMETRY_NOWALL", "1")
        .status()
        .expect("spawn avc");
    assert!(status.success(), "`avc {}` failed", args.join(" "));
}

/// Shard ownership is a partition: for every k, each cell hash belongs to
/// exactly one of the k shards, and `0/1` owns everything.
#[test]
fn shards_partition_every_plan() {
    let quick = Args::parse(["--quick".to_string()]);
    for (name, _) in avc_store::specs::NAMES {
        let plan = avc_store::specs::build(name, &quick).expect("registered sweep builds");
        for k in 1..=5u64 {
            let shards: Vec<Shard> = (0..k)
                .map(|i| Shard::new(i, k).expect("valid shard"))
                .collect();
            for cell in &plan.cells {
                let hash = cell.manifest.hash();
                let owners = shards.iter().filter(|s| s.owns(&hash)).count();
                assert_eq!(
                    owners, 1,
                    "{name}/{} owned by {owners} of {k} shards",
                    cell.label
                );
            }
        }
        let full = Shard::full();
        assert!(plan.cells.iter().all(|c| full.owns(&c.manifest.hash())));
    }
}

#[test]
fn shard_parse_round_trips_and_rejects_malformed() {
    let shard = Shard::parse("2/5").expect("well-formed");
    assert_eq!(shard.to_string(), "2/5");
    assert!(!shard.is_full());
    assert!(Shard::parse("0/1").expect("well-formed").is_full());
    for bad in ["", "3", "3/", "/4", "a/b", "4/4", "5/3", "1/0", "1/1"] {
        assert!(Shard::parse(bad).is_err(), "`{bad}` should be rejected");
    }
}

/// The acceptance gate: a 3-way sharded quick fig3 sweep, merged, is
/// byte-identical to the unsharded (`--shard 0/1`) run — records and all.
#[test]
fn three_way_sharded_fig3_merges_byte_identical() {
    let base = temp_dir("base");
    avc(&base, &["sweep", "fig3", "--quick", "--shard", "0/1"]);

    let shards: Vec<_> = (0..3)
        .map(|i| {
            let dir = temp_dir(&format!("s{i}"));
            avc(
                &dir,
                &["sweep", "fig3", "--quick", "--shard", &format!("{i}/3")],
            );
            dir
        })
        .collect();

    let merged = temp_dir("merged");
    let stores = shards
        .iter()
        .map(|d| d.join("store").to_str().expect("utf-8").to_string())
        .collect::<Vec<_>>()
        .join(",");
    avc(&merged, &["merge", "fig3", "--quick", "--stores", &stores]);

    let records = |dir: &Path| {
        let path = dir.join("store/records.jsonl");
        std::fs::read(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()))
    };
    let (expected, got) = (records(&base), records(&merged));
    assert!(!expected.is_empty(), "unsharded store is empty");
    assert_eq!(
        expected, got,
        "merged records.jsonl differs from the unsharded sweep's"
    );

    // The shard stores are disjoint and together cover the 9-cell grid.
    let lines = |dir: &Path| {
        String::from_utf8(records(dir))
            .expect("utf-8")
            .lines()
            .count()
    };
    let total: usize = shards.iter().map(|d| lines(d)).sum();
    assert_eq!(total, 9, "shard stores overlap or miss cells");

    // Merged journal lines keep their shard provenance.
    let journal = std::fs::read_to_string(merged.join("store/telemetry.jsonl"))
        .expect("merged journal exists");
    assert_eq!(journal.lines().count(), 9);
    assert!(
        journal.lines().all(|l| l.contains("\"shard\":\"")),
        "merged journal lines lost shard provenance"
    );

    for dir in shards.iter().chain([&base, &merged]) {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Merging with a shard missing reports the gap instead of writing a
/// partial store silently.
#[test]
fn merge_with_missing_shard_fails_loudly() {
    let only = temp_dir("only0");
    avc(&only, &["sweep", "fig3", "--quick", "--shard", "0/3"]);

    let merged = temp_dir("partial");
    let store = only.join("store");
    let output = Command::new(env!("CARGO_BIN_EXE_avc"))
        .args(["merge", "fig3", "--quick", "--stores"])
        .arg(store.to_str().expect("utf-8"))
        .args(["--out", merged.to_str().expect("utf-8")])
        .env("AVC_TELEMETRY_NOWALL", "1")
        .output()
        .expect("spawn avc");
    assert!(!output.status.success(), "partial merge should fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("missing from every shard store"),
        "unexpected error: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&only);
    let _ = std::fs::remove_dir_all(&merged);
}
