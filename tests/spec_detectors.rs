//! Convergence-detector unit tests on hand-built edge configurations:
//! `n = 1` predicate projections, exact-tie inputs, already-unanimous
//! starts, unsatisfiable rules, and the verdict mapping for silent
//! configurations.
//!
//! The detectors live in two layers — [`StopCondition::for_rule`] projects
//! a [`ConvergenceRule`] into count-space predicates the engines evaluate
//! inline, and the driver maps predicate/silence hits back into a
//! [`Verdict`]. Both layers are pinned here.

use avc::population::driver::{Driver, NullObserver};
use avc::population::engine::{config_silent, CountSim, JumpSim, Simulator, StopCondition};
use avc::population::protocol::tests_support::{Annihilate, Voter};
use avc::population::spec::Verdict;
use avc::population::{Config, ConvergenceRule, MajorityInstance, Opinion, Protocol, StateId};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

fn run_rule<P: Protocol>(
    protocol: P,
    config: Config,
    rule: ConvergenceRule,
    seed: u64,
    max_steps: u64,
) -> avc::population::spec::RunOutcome {
    let mut sim = CountSim::new(protocol, config);
    let mut rng = SmallRng::seed_from_u64(seed);
    Driver::new(rule)
        .with_max_steps(max_steps)
        .run(&mut sim, &mut rng, &mut NullObserver)
}

/// A single agent is always in output consensus: at `n = 1` the projected
/// predicates (`count_a ≤ 0`, `count_a ≥ 1`) cover both possible counts.
/// The engines refuse `n < 2`, so this boundary lives entirely in the
/// predicate layer — which is exactly where `for_rule` must get it right.
#[test]
fn output_consensus_is_immediate_at_n_equals_one() {
    let stop = StopCondition::for_rule(ConvergenceRule::OutputConsensus, 1);
    assert_eq!(stop.a_le, Some(0));
    assert_eq!(stop.a_ge, Some(1));
    assert!(stop.predicate_hit(0, false), "lone B agent is a consensus");
    assert!(stop.predicate_hit(1, false), "lone A agent is a consensus");
}

/// At general `n` the output-consensus predicates hit exactly the two
/// unanimous counts and nothing in between.
#[test]
fn output_consensus_hits_only_the_extremes() {
    let n = 10;
    let stop = StopCondition::for_rule(ConvergenceRule::OutputConsensus, n);
    assert!(stop.predicate_hit(0, false));
    assert!(stop.predicate_hit(n, false));
    for count_a in 1..n {
        assert!(
            !stop.predicate_hit(count_a, false),
            "spurious hit at count_a = {count_a}"
        );
    }
}

/// State consensus is strictly stronger than output consensus: the
/// projected predicate keys on the unanimity flag alone, so even
/// `count_a = n` (all agents *output* A, possibly from different states)
/// must not trigger it.
#[test]
fn state_consensus_ignores_output_counts() {
    let n = 10;
    let stop = StopCondition::for_rule(ConvergenceRule::StateConsensus, n);
    for count_a in [0, 1, n - 1, n] {
        assert!(!stop.predicate_hit(count_a, false));
        assert!(stop.predicate_hit(count_a, true));
    }
}

/// `Silence` has no count-space projection (the driver polls
/// `config_is_silent` at its own cadence), and an `OutputCount` demanding
/// more agents than exist arms nothing either — both conditions must never
/// fire, for any count.
#[test]
fn silence_and_unsatisfiable_output_count_arm_no_predicate() {
    let n = 10;
    let unsatisfiable = ConvergenceRule::OutputCount {
        opinion: Opinion::B,
        count: n + 1,
    };
    for stop in [
        StopCondition::for_rule(ConvergenceRule::Silence, n),
        StopCondition::for_rule(unsatisfiable, n),
    ] {
        assert_eq!((stop.a_le, stop.a_ge, stop.a_eq), (None, None, None));
        for count_a in 0..=n {
            assert!(!stop.predicate_hit(count_a, false));
        }
    }
}

/// `OutputCount` on opinion `B` projects through the complement:
/// demanding `count` B-agents out of `n` arms `count_a == n − count`, and
/// the tie target `n/2` sits strictly between the consensus extremes.
#[test]
fn output_count_projects_b_through_the_complement() {
    let n = 10;
    let stop = StopCondition::for_rule(
        ConvergenceRule::OutputCount {
            opinion: Opinion::B,
            count: 3,
        },
        n,
    );
    assert_eq!(stop.a_eq, Some(7));
    assert!(stop.predicate_hit(7, false));
    assert!(!stop.predicate_hit(3, false), "counted the wrong side");

    let tie = StopCondition::for_rule(
        ConvergenceRule::OutputCount {
            opinion: Opinion::A,
            count: n / 2,
        },
        n,
    );
    assert!(tie.predicate_hit(n / 2, false));
    assert!(!tie.predicate_hit(0, false));
    assert!(!tie.predicate_hit(n, false));
}

/// Every single-agent configuration is silent: an interaction needs an
/// ordered pair of *distinct* agents, and there is no second agent. This
/// is the `n = 1` degenerate case the engines themselves refuse.
#[test]
fn single_agent_configurations_are_silent() {
    assert!(config_silent(&Voter, &[1, 0]));
    assert!(config_silent(&Voter, &[0, 1]));
    assert!(config_silent(&Annihilate, &[0, 1, 0]));
    // Two copies of a productive pair, by contrast, are live.
    assert!(!config_silent(&Annihilate, &[1, 1, 0]));
}

/// An already-unanimous start converges at step zero: the driver checks
/// the rule before the first step, reports `parallel_time = 0`, and never
/// touches the RNG — the stream position matters because trial seeds are
/// shared across detector variants.
#[test]
fn already_unanimous_start_converges_at_step_zero() {
    for (counts, expected) in [(vec![6, 0], Opinion::A), (vec![0, 6], Opinion::B)] {
        let mut sim = CountSim::new(Voter, Config::from_counts(counts));
        let mut rng = SmallRng::seed_from_u64(42);
        let out = Driver::new(ConvergenceRule::OutputConsensus)
            .with_max_steps(1_000)
            .run(&mut sim, &mut rng, &mut NullObserver);
        assert_eq!(out.verdict, Verdict::Consensus(expected));
        assert_eq!(out.steps, 0);
        assert_eq!(out.parallel_time, 0.0);
        let mut fresh = SmallRng::seed_from_u64(42);
        assert_eq!(
            rng.next_u64(),
            fresh.next_u64(),
            "a zero-step run consumed randomness"
        );
    }
}

/// An exact tie has no correct answer (`winner()` is `None`), but the
/// detectors still terminate protocols that break ties dynamically: the
/// voter model absorbs into *some* consensus from `a = b`.
#[test]
fn exact_tie_has_no_winner_but_voter_still_decides() {
    let inst = MajorityInstance::new(8, 8);
    assert_eq!(inst.winner(), None);
    assert_eq!(inst.margin(), 0.0);
    for seed in 0..10u64 {
        let out = run_rule(
            Voter,
            Config::from_input(&Voter, inst.a(), inst.b()),
            ConvergenceRule::OutputConsensus,
            seed,
            10_000_000,
        );
        assert!(
            out.verdict.is_consensus(),
            "voter failed to break the tie (seed {seed}): {:?}",
            out.verdict
        );
    }
}

/// Verdicts for silent configurations, pinned with the annihilation
/// protocol (its terminal configuration is computable by hand):
///
/// * a tie annihilates completely — all agents dead, which is unanimous,
///   so `StateConsensus` is met;
/// * an off-tie leaves surviving tokens next to dead agents — silent but
///   not unanimous, so `StateConsensus` yields [`Verdict::Stuck`].
///
/// The stuck case runs on [`JumpSim`], the null-skipping engine that
/// *detects* silence mid-run; `CountSim` would sample unproductive pairs
/// to the step budget instead (the driver only polls silence for
/// `ConvergenceRule::Silence`).
#[test]
fn silent_configurations_resolve_by_unanimity_under_state_consensus() {
    for seed in 0..5u64 {
        let tied = run_rule(
            Annihilate,
            Config::from_input(&Annihilate, 4, 4),
            ConvergenceRule::StateConsensus,
            seed,
            10_000_000,
        );
        // All agents end dead; dead outputs A.
        assert_eq!(tied.verdict, Verdict::Consensus(Opinion::A), "seed {seed}");

        // One +1 token survives among dead agents: silent, not unanimous.
        let mut sim = JumpSim::new(Annihilate, Config::from_input(&Annihilate, 3, 2));
        let mut rng = SmallRng::seed_from_u64(seed);
        let offset = Driver::new(ConvergenceRule::StateConsensus)
            .with_max_steps(10_000_000)
            .run(&mut sim, &mut rng, &mut NullObserver);
        assert_eq!(offset.verdict, Verdict::Stuck, "seed {seed}");
        assert!(sim.config_is_silent(), "seed {seed}");
    }
}

/// Under `ConvergenceRule::Silence` the verdict reports the *output*
/// composition of the silent configuration: unanimous outputs give a
/// consensus, mixed outputs give `Stuck`. `Annihilate(3, 2)` ends with the
/// survivor and the dead agents all outputting A; `Annihilate(2, 3)` ends
/// with a B survivor among A-outputting dead agents — mixed.
#[test]
fn silence_rule_maps_outputs_of_the_silent_configuration() {
    for seed in 0..5u64 {
        let all_a = run_rule(
            Annihilate,
            Config::from_input(&Annihilate, 3, 2),
            ConvergenceRule::Silence,
            seed,
            10_000_000,
        );
        assert_eq!(all_a.verdict, Verdict::Consensus(Opinion::A), "seed {seed}");

        let mixed = run_rule(
            Annihilate,
            Config::from_input(&Annihilate, 2, 3),
            ConvergenceRule::Silence,
            seed,
            10_000_000,
        );
        assert_eq!(mixed.verdict, Verdict::Stuck, "seed {seed}");
    }
}

/// A two-state protocol that never goes silent: the responder toggles on
/// every interaction, so some ordered pair always changes the
/// configuration and the only way out is the step budget.
#[derive(Debug, Clone, Copy)]
struct Churn;

impl Protocol for Churn {
    fn num_states(&self) -> u32 {
        2
    }
    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        (initiator, 1 - responder)
    }
    fn output(&self, state: StateId) -> Opinion {
        if state == 0 {
            Opinion::A
        } else {
            Opinion::B
        }
    }
    fn input(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => 0,
            Opinion::B => 1,
        }
    }
    fn name(&self) -> &str {
        "churn-test"
    }
}

/// An unsatisfiable rule on a never-silent protocol runs to the exact step
/// budget and reports `MaxSteps` — for both projection shapes: the armed
/// `count_a == n + 1` predicate that can never hold, and the B-side
/// projection that arms nothing at all.
#[test]
fn unsatisfiable_output_count_runs_to_the_step_budget() {
    let n = 10u64;
    let budget = 5_000u64;
    for opinion in [Opinion::A, Opinion::B] {
        let out = run_rule(
            Churn,
            Config::from_input(&Churn, n / 2, n / 2),
            ConvergenceRule::OutputCount {
                opinion,
                count: n + 1,
            },
            7,
            budget,
        );
        assert_eq!(out.verdict, Verdict::MaxSteps, "{opinion:?}");
        assert_eq!(out.steps, budget, "engines stop at the exact boundary");
    }
}

/// On one trajectory, output consensus is hit no later than state
/// consensus: the three-state protocol reaches all-one-output while blank
/// agents remain, and needs strictly longer to resolve them into one
/// state. Same seed ⇒ same trajectory, so the hitting times are directly
/// comparable.
#[test]
fn output_consensus_precedes_state_consensus_for_three_state() {
    let ts = avc::protocols::ThreeState::new();
    let mut strictly_earlier = 0u32;
    for seed in 0..8u64 {
        let output = run_rule(
            ts,
            Config::from_input(&ts, 30, 20),
            ConvergenceRule::OutputConsensus,
            seed,
            100_000_000,
        );
        let state = run_rule(
            ts,
            Config::from_input(&ts, 30, 20),
            ConvergenceRule::StateConsensus,
            seed,
            100_000_000,
        );
        assert!(output.verdict.is_consensus(), "seed {seed}");
        assert!(state.verdict.is_consensus(), "seed {seed}");
        assert!(
            output.steps <= state.steps,
            "seed {seed}: output consensus at {} after state consensus at {}",
            output.steps,
            state.steps
        );
        if output.steps < state.steps {
            strictly_earlier += 1;
        }
    }
    assert!(
        strictly_earlier > 0,
        "blank agents never delayed state consensus — detector distinction untested"
    );
}
