//! The majority-problem specification and convergence criteria.

use crate::protocol::Opinion;
use std::fmt;

/// An instance of the majority problem: `a` agents start with opinion `A`
/// and `b` agents with opinion `B`.
///
/// The *margin* is `ε = |a − b| / n`; the paper parameterizes running times
/// by `ε` and frequently uses the hardest setting `εn = 1` (a single-agent
/// advantage).
///
/// # Example
///
/// ```
/// use avc_population::{MajorityInstance, Opinion};
///
/// let inst = MajorityInstance::new(6, 5);
/// assert_eq!(inst.population(), 11);
/// assert_eq!(inst.winner(), Some(Opinion::A));
/// assert!((inst.margin() - 1.0 / 11.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MajorityInstance {
    a: u64,
    b: u64,
}

impl MajorityInstance {
    /// Creates an instance with `a` agents of opinion `A` and `b` of `B`.
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than two agents.
    #[must_use]
    pub fn new(a: u64, b: u64) -> MajorityInstance {
        assert!(a + b >= 2, "population must have at least two agents");
        MajorityInstance { a, b }
    }

    /// The hardest instance on `n` agents: the majority holds by exactly one
    /// agent (`εn = 1`), with `A` the majority. Used throughout Figure 3.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `n` is even (a one-agent advantage needs odd `n`).
    #[must_use]
    pub fn one_extra(n: u64) -> MajorityInstance {
        assert!(n >= 3, "need at least three agents, got {n}");
        assert!(n % 2 == 1, "a one-agent advantage requires odd n, got {n}");
        MajorityInstance::new(n / 2 + 1, n / 2)
    }

    /// An instance on `n` agents with relative advantage (margin) at least
    /// `epsilon` in favor of `A`, i.e. `a − b = max(1, round(εn))` rounded to
    /// match parity with `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `epsilon` is not in `(0, 1]`.
    #[must_use]
    pub fn with_margin(n: u64, epsilon: f64) -> MajorityInstance {
        assert!(n >= 2, "need at least two agents, got {n}");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "margin must be in (0,1], got {epsilon}"
        );
        let mut gap = ((epsilon * n as f64).round() as u64).max(1);
        if gap % 2 != n % 2 {
            gap += 1; // a and b must be integers with a+b = n
        }
        let gap = gap.min(n);
        MajorityInstance::new((n + gap) / 2, (n - gap) / 2)
    }

    /// Number of agents starting with opinion `A`.
    #[must_use]
    pub fn a(&self) -> u64 {
        self.a
    }

    /// Number of agents starting with opinion `B`.
    #[must_use]
    pub fn b(&self) -> u64 {
        self.b
    }

    /// Total population `n = a + b`.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.a + self.b
    }

    /// The relative advantage `ε = |a − b| / n`.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.a.abs_diff(self.b) as f64 / self.population() as f64
    }

    /// The correct output, or `None` for a tie.
    #[must_use]
    pub fn winner(&self) -> Option<Opinion> {
        match self.a.cmp(&self.b) {
            std::cmp::Ordering::Greater => Some(Opinion::A),
            std::cmp::Ordering::Less => Some(Opinion::B),
            std::cmp::Ordering::Equal => None,
        }
    }
}

impl fmt::Display for MajorityInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "majority(a={}, b={})", self.a, self.b)
    }
}

/// When a run is considered converged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConvergenceRule {
    /// All agents report the same output under `γ`.
    ///
    /// This matches the paper's convergence definition for protocols where
    /// output consensus is stable (AVC — Lemma A.1; the four-state protocol;
    /// the voter model).
    #[default]
    OutputConsensus,
    /// All agents occupy one identical state.
    ///
    /// Used for the three-state protocol, whose output-consensus
    /// configurations still contain blank agents; the literature \[PVV09]
    /// measures hitting times of the all-`x`/all-`y` terminal states.
    StateConsensus,
    /// No productive ordered pair remains (the configuration is silent).
    Silence,
    /// Exactly `count` agents output `opinion`.
    ///
    /// Used for predicates beyond majority — e.g. leader election converges
    /// when exactly one agent outputs the leader opinion. The run's verdict
    /// is `Consensus(opinion)` when the count is hit; stability is the
    /// protocol designer's obligation (for leader election, the leader
    /// count is non-increasing and never reaches zero).
    OutputCount {
        /// The opinion whose population is counted.
        opinion: Opinion,
        /// The target number of agents with that opinion.
        count: u64,
    },
}

/// The result of running a simulation until convergence (or a step bound).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Total scheduler steps elapsed, including skipped silent steps.
    pub steps: u64,
    /// `steps / n` — the paper's parallel-time metric.
    pub parallel_time: f64,
    /// How the run ended.
    pub verdict: Verdict,
}

/// How a simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The convergence rule was met; the population agreed on this opinion.
    Consensus(Opinion),
    /// The step bound was exhausted before convergence.
    MaxSteps,
    /// The configuration became silent without meeting the convergence rule
    /// (possible only for protocols that can get stuck, e.g. under
    /// `ConvergenceRule::StateConsensus`).
    Stuck,
}

impl Verdict {
    /// Whether the run converged.
    #[must_use]
    pub fn is_consensus(&self) -> bool {
        matches!(self, Verdict::Consensus(_))
    }

    /// The agreed opinion, if the run converged.
    #[must_use]
    pub fn opinion(&self) -> Option<Opinion> {
        match self {
            Verdict::Consensus(op) => Some(*op),
            _ => None,
        }
    }

    /// Whether the run converged to `expected`.
    #[must_use]
    pub fn is_correct(&self, expected: Opinion) -> bool {
        self.opinion() == Some(expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_extra_gives_unit_advantage() {
        let inst = MajorityInstance::one_extra(101);
        assert_eq!(inst.a(), 51);
        assert_eq!(inst.b(), 50);
        assert_eq!(inst.winner(), Some(Opinion::A));
        assert!((inst.margin() - 1.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "odd n")]
    fn one_extra_rejects_even_population() {
        let _ = MajorityInstance::one_extra(10);
    }

    #[test]
    fn with_margin_respects_parity() {
        for n in [10u64, 11, 100, 101, 1000] {
            for eps in [0.001, 0.01, 0.1, 0.5] {
                let inst = MajorityInstance::with_margin(n, eps);
                assert_eq!(inst.population(), n);
                assert!(inst.a() > inst.b());
                // Achieved margin is at least the requested one (up to the
                // integrality minimum) and within 2/n of it.
                let achieved = inst.margin();
                assert!(achieved >= eps.min(1.0) - 1e-12 || inst.a() - inst.b() <= 2);
                assert!(achieved <= eps + 2.0 / n as f64 + 1e-12);
            }
        }
    }

    #[test]
    fn with_margin_full_margin_is_unanimous() {
        let inst = MajorityInstance::with_margin(10, 1.0);
        assert_eq!(inst.a(), 10);
        assert_eq!(inst.b(), 0);
    }

    #[test]
    fn tie_has_no_winner() {
        assert_eq!(MajorityInstance::new(5, 5).winner(), None);
    }

    #[test]
    fn verdict_accessors() {
        let v = Verdict::Consensus(Opinion::B);
        assert!(v.is_consensus());
        assert_eq!(v.opinion(), Some(Opinion::B));
        assert!(v.is_correct(Opinion::B));
        assert!(!v.is_correct(Opinion::A));
        assert!(!Verdict::MaxSteps.is_consensus());
        assert_eq!(Verdict::Stuck.opinion(), None);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            MajorityInstance::new(3, 2).to_string(),
            "majority(a=3, b=2)"
        );
    }
}
