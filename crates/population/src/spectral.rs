//! Spectral analysis of interaction graphs.
//!
//! \[DV12] bound the four-state protocol's convergence on a connected graph
//! `G` by `(log n + 1)/δ(G, ε)`, where `δ` is an eigenvalue gap of the
//! pairwise interaction rate matrices; on the clique this specializes to
//! the `O(log n/ε)` bound quoted in the paper. This module computes the
//! spectral gap `1 − λ₂` of the lazy random-walk matrix of a graph, the
//! standard proxy for that mixing quantity, so experiments can correlate
//! convergence time with graph expansion (see the `graph_gap` binary).

use crate::graph::Graph;
use rand::Rng;

/// Options for the power-iteration eigensolver.
#[derive(Debug, Clone, Copy)]
pub struct PowerIterationOptions {
    /// Maximum iterations before giving up.
    pub max_iterations: u32,
    /// Convergence tolerance on the eigenvalue estimate.
    pub tolerance: f64,
}

impl Default for PowerIterationOptions {
    fn default() -> PowerIterationOptions {
        PowerIterationOptions {
            max_iterations: 2_000_000,
            tolerance: 1e-11,
        }
    }
}

/// Computes the spectral gap `1 − λ₂` of the graph's random-walk matrix,
/// where `λ₂` is the second-largest (signed) eigenvalue of the symmetric
/// normalized adjacency `D^{-1/2} A D^{-1/2}`.
///
/// Large gaps (≈1, e.g. the clique) mean fast mixing and fast consensus;
/// small gaps (`Θ(1/n²)` for the cycle) mean slow consensus — the shape the
/// `graph_gap` experiment demonstrates for the four-state protocol.
///
/// The computation is exact for the clique (closed form) and uses deflated
/// power iteration otherwise.
///
/// # Panics
///
/// Panics if the graph is disconnected or has isolated vertices (the gap is
/// 0 and consensus is impossible), or if power iteration fails to converge
/// within the option budget.
#[must_use]
pub fn spectral_gap(graph: &Graph, options: PowerIterationOptions) -> f64 {
    let n = graph.num_agents();
    if graph.is_clique() {
        // K_n: eigenvalues of the normalized adjacency are 1 and −1/(n−1).
        return 1.0 + 1.0 / (n as f64 - 1.0);
    }
    assert!(graph.is_connected(), "spectral gap needs a connected graph");

    let mut adj = vec![Vec::new(); n];
    for (u, v) in graph.edge_pairs() {
        adj[u].push(v);
        adj[v].push(u);
    }
    let degree: Vec<f64> = adj.iter().map(|a| a.len() as f64).collect();
    assert!(
        degree.iter().all(|&d| d > 0.0),
        "spectral gap needs no isolated vertices"
    );

    // Shifted operator M = (N + I)/2 maps the spectrum of the normalized
    // adjacency N from [−1, 1] to [0, 1] monotonically, so the second
    // largest eigenvalue of M is (1 + λ₂)/2 and power iteration cannot be
    // captured by a large-magnitude negative eigenvalue (bipartite graphs).
    let top: Vec<f64> = {
        // The top eigenvector of N is D^{1/2}·1, normalized.
        let norm = degree.iter().sum::<f64>().sqrt();
        degree.iter().map(|d| d.sqrt() / norm).collect()
    };
    let apply = |x: &[f64], out: &mut [f64]| {
        for u in 0..n {
            let mut acc = 0.0;
            for &v in &adj[u] {
                acc += x[v] / (degree[u] * degree[v]).sqrt();
            }
            out[u] = 0.5 * (acc + x[u]);
        }
    };

    // Deterministically seeded start vector, deflated against `top`.
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0x5eed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    deflate(&mut x, &top);
    normalize(&mut x);

    let mut y = vec![0.0; n];
    let mut previous = f64::NAN;
    for _ in 0..options.max_iterations {
        apply(&x, &mut y);
        deflate(&mut y, &top);
        let eigenvalue = dot(&x, &y);
        let norm = normalize(&mut y);
        std::mem::swap(&mut x, &mut y);
        if norm == 0.0 {
            // N has no second eigenvector component left: complete bipartite
            // corner cases; λ₂ of M is 0 ⇒ λ₂ of N is −1.
            return 2.0;
        }
        if (eigenvalue - previous).abs() < options.tolerance {
            let lambda2 = 2.0 * eigenvalue - 1.0;
            return 1.0 - lambda2;
        }
        previous = eigenvalue;
    }
    panic!(
        "power iteration did not converge within {} iterations",
        options.max_iterations
    );
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn deflate(x: &mut [f64], direction: &[f64]) {
    let proj = dot(x, direction);
    for (xi, di) in x.iter_mut().zip(direction) {
        *xi -= proj * di;
    }
}

fn normalize(x: &mut [f64]) -> f64 {
    let norm = dot(x, x).sqrt();
    if norm > 0.0 {
        for xi in x.iter_mut() {
            *xi /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gap(graph: &Graph) -> f64 {
        spectral_gap(graph, PowerIterationOptions::default())
    }

    #[test]
    fn clique_gap_is_closed_form() {
        assert!((gap(&Graph::clique(10)) - (1.0 + 1.0 / 9.0)).abs() < 1e-12);
        assert!((gap(&Graph::clique(100)) - (1.0 + 1.0 / 99.0)).abs() < 1e-12);
    }

    #[test]
    fn cycle_gap_matches_closed_form() {
        // C_n: λ₂ = cos(2π/n) ⇒ gap = 1 − cos(2π/n).
        for n in [8usize, 20, 50] {
            let expected = 1.0 - (2.0 * std::f64::consts::PI / n as f64).cos();
            let got = gap(&Graph::cycle(n));
            assert!(
                (got - expected).abs() < 1e-7,
                "cycle n={n}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn path_gap_matches_closed_form() {
        // P_n (random walk with reflecting ends): λ₂ = cos(π/(n−1)), so the
        // gap is 1 − cos(π/(n−1)).
        let n = 12usize;
        let expected = 1.0 - (std::f64::consts::PI / (n as f64 - 1.0)).cos();
        let got = gap(&Graph::path(n));
        assert!((got - expected).abs() < 1e-7, "{got} vs {expected}");
    }

    #[test]
    fn star_gap_is_one() {
        // Star: normalized adjacency eigenvalues are ±1 and 0 (multiplicity
        // n−2), so λ₂ = 0 and the gap is 1.
        let got = gap(&Graph::star(15));
        assert!((got - 1.0).abs() < 1e-7, "{got}");
    }

    #[test]
    fn expander_beats_cycle() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
        let er = loop {
            let g = Graph::erdos_renyi(60, 0.2, &mut rng);
            if g.is_connected() {
                break g;
            }
        };
        assert!(gap(&er) > 10.0 * gap(&Graph::cycle(60)));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected_graphs() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let _ = gap(&g);
    }
}
