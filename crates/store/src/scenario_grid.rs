//! Scenario-grid sweeps: a [`Plan`] loaded from a JSON file instead of a
//! registered spec module.
//!
//! A grid file is a committed `examples/scenarios/*.grid.json` document
//! bundling many declarative [`Scenario`]s into one sweep — the route by
//! which new protocols get comparison sweeps without any new Rust spec
//! module or binary. `avc sweep <path>.grid.json` runs the grid with the
//! full checkpoint/resume/shard machinery; `avc run <path>.grid.json`
//! executes it store-free; `avc export <path>.grid.json` writes one
//! `results/<name>.csv` with per-cell outcome and timing columns plus the
//! state-count accounting for each protocol.
//!
//! ```json
//! {
//!   "schema": 1,
//!   "name": "rivals_time_vs_n",
//!   "banner": "exact-majority rivals: time vs n",
//!   "quick": {"runs": 3, "max_steps": 10000000, "max_n": 2000},
//!   "cells": [
//!     {"label": "bef/n=1001/gap=1", "scenario": {"schema": 1, "...": "..."}}
//!   ]
//! }
//! ```
//!
//! The optional `quick` block is the CI knob: under `--quick`, `runs` and
//! `max_steps` are clamped to its values and cells with populations above
//! `max_n` are dropped, so the smoke job stays fast while the committed
//! grid keeps its full resolution. Quick cells carry their clamped
//! scenario in the manifest, so quick and full runs never collide in the
//! store.

use crate::manifest::Manifest;
use crate::record::CellResult;
use crate::specs::{scenario_params, trials_of};
use crate::sweep::{Cell, Export, Plan};
use avc_analysis::cli::Args;
use avc_analysis::harness::{spec_states, ScenarioPlan};
use avc_analysis::stats::Summary;
use avc_analysis::table::{fmt_num, Table};
use avc_population::json::Json;
use avc_population::spec::Verdict;
use avc_population::{EngineKind, Scenario, SchedulerSpec};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// The quick-profile clamps of a grid file (`"quick"` block), applied only
/// under `--quick`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridQuick {
    /// Upper bound on per-cell `runs`.
    pub runs: Option<u64>,
    /// Upper bound on per-cell `max_steps`.
    pub max_steps: Option<u64>,
    /// Cells with populations above this are dropped.
    pub max_n: Option<u64>,
}

/// One grid cell: a unique label plus the scenario it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Unique cell label (the manifest's `cell` param and the CSV row key).
    pub label: String,
    /// The declarative scenario this cell executes.
    pub scenario: Scenario,
}

/// A parsed scenario-grid file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// Grid name: the experiment name in the store and the CSV file stem.
    pub name: String,
    /// One-line banner shown by `avc sweep`.
    pub banner: String,
    /// Quick-profile clamps (empty defaults when the file has none).
    pub quick: GridQuick,
    /// Cells in file order (the sweep's deterministic grid order).
    pub cells: Vec<GridCell>,
}

/// Whether a JSON document is a scenario grid (as opposed to one scenario):
/// grids have a top-level `cells` array.
#[must_use]
pub fn is_grid(json: &Json) -> bool {
    json.get("cells").is_some()
}

fn u64_opt(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_int()
            .filter(|&i| i >= 0)
            .map(|i| Some(i as u64))
            .ok_or_else(|| format!("grid `{key}` must be a non-negative integer")),
    }
}

impl ScenarioGrid {
    /// Parses a grid document, validating every embedded scenario and
    /// requiring unique cell labels.
    pub fn from_json(json: &Json) -> Result<ScenarioGrid, String> {
        let obj = json.as_obj().ok_or("grid must be a JSON object")?;
        for key in obj.keys() {
            const KNOWN: [&str; 5] = ["schema", "name", "banner", "quick", "cells"];
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!("unknown grid field `{key}`"));
            }
        }
        if let Some(schema) = obj.get("schema") {
            if schema.as_int() != Some(1) {
                return Err("unsupported grid schema (expected 1)".to_string());
            }
        }
        let name = obj
            .get("name")
            .and_then(Json::as_str)
            .ok_or("grid needs a string `name` field")?
            .to_string();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!(
                "grid name `{name}` must be non-empty [A-Za-z0-9_] (it becomes the CSV stem)"
            ));
        }
        let banner = obj
            .get("banner")
            .and_then(Json::as_str)
            .unwrap_or(&name)
            .to_string();
        let quick = match obj.get("quick") {
            None => GridQuick::default(),
            Some(q) => {
                let qobj = q.as_obj().ok_or("grid `quick` must be an object")?;
                for key in qobj.keys() {
                    const KNOWN: [&str; 3] = ["runs", "max_steps", "max_n"];
                    if !KNOWN.contains(&key.as_str()) {
                        return Err(format!("unknown grid quick field `{key}`"));
                    }
                }
                GridQuick {
                    runs: u64_opt(q, "runs")?,
                    max_steps: u64_opt(q, "max_steps")?,
                    max_n: u64_opt(q, "max_n")?,
                }
            }
        };
        let cells_json = obj
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("grid needs a `cells` array")?;
        if cells_json.is_empty() {
            return Err("grid has no cells".to_string());
        }
        let mut cells = Vec::with_capacity(cells_json.len());
        let mut labels = BTreeSet::new();
        for (i, cell) in cells_json.iter().enumerate() {
            let label = cell
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("grid cell {i} needs a string `label`"))?
                .to_string();
            if !labels.insert(label.clone()) {
                return Err(format!("duplicate grid cell label `{label}`"));
            }
            let scenario_json = cell
                .get("scenario")
                .ok_or_else(|| format!("grid cell `{label}` needs a `scenario` object"))?;
            let scenario = Scenario::from_json(scenario_json)
                .map_err(|e| format!("grid cell `{label}`: {e}"))?;
            if scenario.scheduler != SchedulerSpec::Uniform && scenario.engine != EngineKind::Agent
            {
                return Err(format!(
                    "grid cell `{label}`: scheduler `{}` needs per-agent scheduling — set \
                     \"engine\": \"agent\" (got `{}`)",
                    scenario.scheduler, scenario.engine
                ));
            }
            cells.push(GridCell { label, scenario });
        }
        Ok(ScenarioGrid {
            name,
            banner,
            quick,
            cells,
        })
    }

    /// Parses a grid file's text.
    pub fn parse(text: &str) -> Result<ScenarioGrid, String> {
        ScenarioGrid::from_json(&Json::parse(text)?)
    }

    /// The cells to execute for a profile: the full grid, or the
    /// quick-clamped subset under `quick`.
    #[must_use]
    pub fn profile_cells(&self, quick: bool) -> Vec<GridCell> {
        if !quick {
            return self.cells.clone();
        }
        self.cells
            .iter()
            .filter(|cell| {
                self.quick
                    .max_n
                    .is_none_or(|max| cell.scenario.instance.population() <= max)
            })
            .map(|cell| {
                let mut scenario = cell.scenario.clone();
                if let Some(runs) = self.quick.runs {
                    scenario.runs = scenario.runs.min(runs);
                }
                if let Some(max_steps) = self.quick.max_steps {
                    scenario.max_steps = scenario.max_steps.min(max_steps);
                }
                GridCell {
                    label: cell.label.clone(),
                    scenario,
                }
            })
            .collect()
    }
}

/// The grid CSV columns, in order.
const COLUMNS: [&str; 17] = [
    "cell",
    "protocol",
    "states",
    "n",
    "a",
    "b",
    "engine",
    "scheduler",
    "runs",
    "correct",
    "wrong",
    "timeout",
    "stuck",
    "mean_time",
    "std_error",
    "median_time",
    "max_time",
];

/// Loads a grid file into a runnable [`Plan`] (the `avc sweep`/`avc
/// export` entry point; honors `--quick`).
pub fn load_plan(path: &str, args: &Args) -> Result<Plan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let grid = ScenarioGrid::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(plan_of(&grid, args))
}

/// Builds the [`Plan`] for a parsed grid.
#[must_use]
pub fn plan_of(grid: &ScenarioGrid, args: &Args) -> Plan {
    let quick = args.flag("quick");
    let parallelism = args.parallelism();
    let cells = grid.profile_cells(quick);
    let stem = grid.name.clone();
    let plan_cells = cells
        .into_iter()
        .map(|cell| {
            let scenario = cell.scenario;
            let states = spec_states(scenario.protocol);
            let manifest = Manifest::new(
                &grid.name,
                [
                    ("cell", cell.label.clone()),
                    ("protocol", scenario.protocol.to_string()),
                    ("states", states.to_string()),
                    ("engine", scenario.engine.to_string()),
                    ("scheduler", scenario.scheduler.to_string()),
                    ("n", scenario.instance.population().to_string()),
                    ("a", scenario.instance.a().to_string()),
                    ("b", scenario.instance.b().to_string()),
                    ("runs", scenario.runs.to_string()),
                    ("seed", scenario.seed.to_string()),
                ]
                .into_iter()
                .chain(scenario_params(&scenario)),
            );
            let label = cell.label;
            let stem = stem.clone();
            Cell {
                manifest,
                label: label.clone(),
                run: Box::new(move |stats| {
                    let (results, telemetry) = ScenarioPlan::new(scenario.clone())
                        .parallelism(parallelism)
                        .run_with_telemetry(stats);
                    let winner = scenario.instance.winner();
                    let (mut correct, mut wrong, mut timeout, mut stuck) = (0u64, 0, 0, 0);
                    for outcome in results.outcomes() {
                        match outcome.verdict {
                            Verdict::Consensus(op) if winner.is_none() || Some(op) == winner => {
                                correct += 1;
                            }
                            Verdict::Consensus(_) => wrong += 1,
                            Verdict::MaxSteps => timeout += 1,
                            Verdict::Stuck => stuck += 1,
                        }
                    }
                    let times = results.converged_times();
                    let summary = (!times.is_empty()).then(|| Summary::from_samples(&times));
                    let stat = |f: fn(&Summary) -> f64| {
                        summary.as_ref().map_or("-".to_string(), |s| fmt_num(f(s)))
                    };
                    let row = vec![
                        label.clone(),
                        scenario.protocol.to_string(),
                        states.to_string(),
                        scenario.instance.population().to_string(),
                        scenario.instance.a().to_string(),
                        scenario.instance.b().to_string(),
                        scenario.engine.to_string(),
                        scenario.scheduler.to_string(),
                        results.outcomes().len().to_string(),
                        correct.to_string(),
                        wrong.to_string(),
                        timeout.to_string(),
                        stuck.to_string(),
                        stat(|s| s.mean),
                        stat(Summary::std_error),
                        stat(|s| s.median),
                        stat(|s| s.max),
                    ];
                    CellResult {
                        trials: Some(trials_of(&results)),
                        tables: BTreeMap::from([(stem.clone(), vec![row])]),
                        values: BTreeMap::from([("wrong".to_string(), wrong as f64)]),
                        telemetry: Some(telemetry),
                        ..CellResult::default()
                    }
                }),
            }
        })
        .collect();
    let banner = if quick {
        format!("{} [quick profile]", grid.banner)
    } else {
        grid.banner.clone()
    };
    let title = grid.banner.clone();
    let stem = grid.name.clone();
    Plan {
        name: grid.name.clone(),
        banner,
        cells: plan_cells,
        export: Box::new(move |results| {
            let mut table = Table::new(title.clone(), COLUMNS);
            for result in results {
                for row in result.rows(&stem) {
                    table.push_row(row.clone());
                }
            }
            let wrong: f64 = results.iter().filter_map(|r| r.value("wrong")).sum();
            let trailer = format!("wrong_consensus={wrong} across {} cells", results.len());
            Export {
                tables: vec![(stem.clone(), table)],
                trailer: vec![trailer],
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_analysis::harness::StatsCollector;

    fn sample_grid() -> String {
        r#"{
          "schema": 1,
          "name": "mini_grid",
          "banner": "two tiny rival cells",
          "quick": {"runs": 2, "max_steps": 500000, "max_n": 12},
          "cells": [
            {"label": "bef/n=11", "scenario": {
              "schema": 1, "protocol": "bef(l=3)", "instance": {"a": 6, "b": 5},
              "engine": "count", "rule": "output_consensus",
              "max_steps": 2000000, "runs": 4, "seed": 7}},
            {"label": "degssu/n=11", "scenario": {
              "schema": 1, "protocol": "degssu(l=3,t=2)", "instance": {"a": 6, "b": 5},
              "engine": "count", "rule": "output_consensus",
              "max_steps": 2000000, "runs": 4, "seed": 7}},
            {"label": "four_state/n=101", "scenario": {
              "schema": 1, "protocol": "four_state", "instance": {"a": 51, "b": 50},
              "engine": "count", "rule": "output_consensus",
              "max_steps": 2000000, "runs": 4, "seed": 7}}
          ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_and_validates() {
        let grid = ScenarioGrid::parse(&sample_grid()).expect("valid grid");
        assert_eq!(grid.name, "mini_grid");
        assert_eq!(grid.cells.len(), 3);
        assert_eq!(grid.quick.runs, Some(2));
        // Full profile keeps everything; quick drops the n=101 cell and
        // clamps runs.
        assert_eq!(grid.profile_cells(false).len(), 3);
        let quick = grid.profile_cells(true);
        assert_eq!(quick.len(), 2);
        assert!(quick.iter().all(|c| c.scenario.runs == 2));
        assert!(quick.iter().all(|c| c.scenario.max_steps == 500_000));
    }

    #[test]
    fn rejects_malformed_grids() {
        assert!(ScenarioGrid::parse("{}").is_err());
        let dup = sample_grid().replace("degssu/n=11", "bef/n=11");
        let err = ScenarioGrid::parse(&dup).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let bad_proto = sample_grid().replace("bef(l=3)", "avc(m=2,d=0)");
        let err = ScenarioGrid::parse(&bad_proto).unwrap_err();
        assert!(err.contains("avc m must be odd"), "{err}");
        let unknown = sample_grid().replace("\"banner\"", "\"bannner\"");
        assert!(ScenarioGrid::parse(&unknown).is_err());
    }

    #[test]
    fn grid_detection() {
        assert!(is_grid(&Json::parse(&sample_grid()).unwrap()));
        let single = r#"{"schema":1,"protocol":"voter","instance":{"a":2,"b":1},
                         "engine":"count","rule":"output_consensus","runs":1,"seed":1}"#;
        assert!(!is_grid(&Json::parse(single).unwrap()));
    }

    #[test]
    fn plan_runs_cells_and_exports_rows() {
        let grid = ScenarioGrid::parse(&sample_grid()).expect("valid grid");
        let args = Args::parse(["--quick".to_string()]);
        let plan = plan_of(&grid, &args);
        assert_eq!(plan.name, "mini_grid");
        assert_eq!(plan.cells.len(), 2);
        let stats = StatsCollector::new();
        let results: Vec<CellResult> = plan.cells.iter().map(|c| (c.run)(&stats)).collect();
        let refs: Vec<&CellResult> = results.iter().collect();
        let export = (plan.export)(&refs);
        assert_eq!(export.tables.len(), 1);
        let (stem, table) = &export.tables[0];
        assert_eq!(stem, "mini_grid");
        assert_eq!(table.num_rows(), 2);
        // Exactness: margin-1 cells with generous budgets never err.
        assert!(export.trailer[0].starts_with("wrong_consensus=0"));
        // The state-count accounting column is the resolved protocol size.
        assert_eq!(table.rows()[0][2], "10"); // bef(l=3): 2·4+2
        assert_eq!(table.rows()[1][2], "26"); // degssu(l=3,t=2): 2·4·3+2
    }

    #[test]
    fn manifests_embed_the_effective_scenario() {
        let grid = ScenarioGrid::parse(&sample_grid()).expect("valid grid");
        let full = plan_of(&grid, &Args::parse(Vec::new()));
        let quick = plan_of(&grid, &Args::parse(["--quick".to_string()]));
        // Quick cells clamp runs, so their manifests (and store identities)
        // differ from the full profile's.
        let full_params: Vec<_> = full.cells.iter().map(|c| c.manifest.hash()).collect();
        let quick_params: Vec<_> = quick.cells.iter().map(|c| c.manifest.hash()).collect();
        assert!(quick_params.iter().all(|h| !full_params.contains(h)));
    }
}
